"""Compiled dispatch: lower programs into per-statement handler closures.

The tree-walking :class:`~repro.runtime.executor.Executor` re-discovers the
same facts on every step: a 24-arm ``isinstance`` chain per statement, an
``as_expr`` + ``isinstance`` walk per (sub)expression, operator-token lookups
per arithmetic node.  This module performs that discovery once per program:

* :func:`compile_expr` lowers an expression tree into a closure
  ``(ex, state, tid, stmt, listeners) -> Value`` with constants, memory
  locations and operators resolved at compile time;
* :func:`compile_program` builds a table ``pc -> handler`` of per-statement
  closures, fully specializing the hot statement forms (assign, branches,
  loops, output) and falling through to the executor's ``_exec_*`` methods
  for the synchronisation statements (whose cost is the sync logic itself,
  not dispatch);
* :class:`CompiledExecutor` is a drop-in :class:`Executor` whose
  ``_dispatch``/``_eval`` consult those tables.

Compiled programs are cached process-wide by the trace-cache program
fingerprint (:func:`compiled_program_for`), so pool workers compile each
workload once even though :func:`repro.workloads.registry.load_workload`
rebuilds a fresh ``Program`` instance per task.  Cross-instance reuse is
sound because ``finalize`` assigns pcs deterministically: two programs with
equal fingerprints have identical statements at identical pcs, and every
observable artifact (traces, races, labels) is keyed by pc, never by AST
object identity.  The cache is cleared by fresh pool workers via
:func:`reset_compiled_cache` (wired into ``pool_worker_initializer``).

Both interpreters are bit-identical by contract: verdicts, traces, event
streams and RNG consumption must not depend on ``--interp``.  The
equivalence suite (``tests/test_interpreter.py``) and the ``interpreter``
bench block enforce this.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.lang import ast
from repro.lang.program import Program
from repro.runtime.errors import CrashKind, ProgramCrash
from repro.runtime.executor import (
    _BINOP_TOKENS,
    _UNOP_TOKENS,
    Executor,
    ExecutorConfig,
)
from repro.runtime.listeners import ListenerGroup
from repro.runtime.memory import MemoryLocation
from repro.runtime.state import ExecutionState, OutputRecord
from repro.runtime.threadstate import BlockEntry, LoopEntry
from repro.symex.expr import (
    ConcreteEvaluationError,
    Value,
    is_symbolic,
    make_binary,
    make_unary,
    sym_ne,
)
from repro.symex.simplify import simplify
from repro.symex.solver import Solver

#: selectable interpreter kernels (``--interp`` / ``REPRO_INTERP``)
INTERP_MODES = ("tree", "compiled")

EvalFn = Callable[["Executor", ExecutionState, int, ast.Stmt, ListenerGroup], Value]
HandlerFn = Callable[
    ["Executor", ExecutionState, int, ast.Stmt, ListenerGroup], List[ExecutionState]
]


# --------------------------------------------------------------------------
# Expression compilation
# --------------------------------------------------------------------------


def compile_expr(expr: ast.ExprLike) -> EvalFn:
    """Lower one expression tree into an evaluator closure.

    The closure replicates ``Executor._eval`` exactly — including evaluation
    order, short-circuiting, division side conditions and crash messages —
    but with all type tests and operator lookups performed here, once.
    """
    expr = ast.as_expr(expr)

    if isinstance(expr, ast.Const):
        value = expr.value

        def run_const(ex, state, tid, stmt, listeners):
            return value

        return run_const

    if isinstance(expr, ast.LocalRef):
        name = expr.name

        def run_local(ex, state, tid, stmt, listeners):
            frame = state.thread(tid).current_frame()
            if name not in frame.locals:
                raise ProgramCrash(
                    CrashKind.INVALID_POINTER, f"read of undefined local {name!r}"
                )
            return frame.locals[name]

        return run_local

    if isinstance(expr, ast.GlobalRef):
        name = expr.name
        location = MemoryLocation("global", name)

        def run_global(ex, state, tid, stmt, listeners):
            value = state.memory.load_global(name)
            ex._emit_access(state, tid, location, False, stmt, listeners, value)
            return value

        return run_global

    if isinstance(expr, ast.ArrayRef):
        name = expr.name
        index_run = compile_expr(expr.index)

        def run_array(ex, state, tid, stmt, listeners):
            index = index_run(ex, state, tid, stmt, listeners)
            index = ex._check_array_index(state, name, index)
            value = state.memory.load_array(name, index)
            ex._emit_access(
                state, tid, MemoryLocation("array", name, index), False, stmt, listeners, value
            )
            return value

        return run_array

    if isinstance(expr, ast.HeapRef):
        pointer_run = compile_expr(expr.pointer)
        index_run = compile_expr(expr.index)

        def run_heap(ex, state, tid, stmt, listeners):
            pointer = pointer_run(ex, state, tid, stmt, listeners)
            pointer = int(ex._concretize(state, pointer, what="heap pointer"))
            index = index_run(ex, state, tid, stmt, listeners)
            index = int(ex._concretize(state, index, what="heap index"))
            value = state.memory.load_heap(pointer, index)
            ex._emit_access(
                state,
                tid,
                MemoryLocation("heap", str(pointer), index),
                False,
                stmt,
                listeners,
                value,
            )
            return value

        return run_heap

    if isinstance(expr, ast.InputRef):
        name = expr.name

        def run_input_ref(ex, state, tid, stmt, listeners):
            if name in state.symbolic_inputs:
                return state.symbolic_inputs[name]
            if name in state.concrete_inputs:
                return int(state.concrete_inputs[name])
            raise ProgramCrash(
                CrashKind.INVALID_POINTER, f"reference to unread input {name!r}"
            )

        return run_input_ref

    if isinstance(expr, ast.UnOp):
        operand_run = compile_expr(expr.operand)
        token = expr.op
        op = _UNOP_TOKENS.get(token)
        if op is None:

            def run_unknown_unop(ex, state, tid, stmt, listeners):
                operand_run(ex, state, tid, stmt, listeners)
                raise ProgramCrash(
                    CrashKind.INVALID_POINTER, f"unknown operator {token!r}"
                )

            return run_unknown_unop

        def run_unop(ex, state, tid, stmt, listeners):
            return simplify(make_unary(op, operand_run(ex, state, tid, stmt, listeners)))

        return run_unop

    if isinstance(expr, ast.BinOp):
        return _compile_binop(expr)

    rendered = repr(expr)

    def run_invalid(ex, state, tid, stmt, listeners):  # pragma: no cover - defensive
        raise ProgramCrash(
            CrashKind.INVALID_POINTER, f"cannot evaluate expression {rendered}"
        )

    return run_invalid


def _apply_op(op, left: Value, right: Value) -> Value:
    try:
        return simplify(make_binary(op, left, right))
    except ConcreteEvaluationError as exc:
        raise ProgramCrash(CrashKind.DIVISION_BY_ZERO, str(exc)) from exc


def _compile_binop(expr: ast.BinOp) -> EvalFn:
    token = expr.op
    left_run = compile_expr(expr.left)
    right_run = compile_expr(expr.right)
    op = _BINOP_TOKENS.get(token)

    if token in ("&&", "||"):
        is_and = token == "&&"

        def run_logical(ex, state, tid, stmt, listeners):
            left = left_run(ex, state, tid, stmt, listeners)
            if not is_symbolic(left):
                if is_and:
                    if left == 0:
                        return 0
                elif left != 0:
                    return 1
                right = right_run(ex, state, tid, stmt, listeners)
                return _apply_op(op, 1 if left != 0 else 0, right)
            right = right_run(ex, state, tid, stmt, listeners)
            return _apply_op(op, left, right)

        return run_logical

    if op is None:

        def run_unknown_binop(ex, state, tid, stmt, listeners):
            left_run(ex, state, tid, stmt, listeners)
            right_run(ex, state, tid, stmt, listeners)
            raise ProgramCrash(CrashKind.INVALID_POINTER, f"unknown operator {token!r}")

        return run_unknown_binop

    if token in ("/", "%"):

        def run_division(ex, state, tid, stmt, listeners):
            left = left_run(ex, state, tid, stmt, listeners)
            right = right_run(ex, state, tid, stmt, listeners)
            if not is_symbolic(right):
                if int(right) == 0:
                    raise ProgramCrash(CrashKind.DIVISION_BY_ZERO, "division by zero")
            else:
                # Assume the divisor is nonzero on this path, matching the
                # tree interpreter's side condition.
                state.path_condition.add(sym_ne(right, 0))
            return _apply_op(op, left, right)

        return run_division

    def run_binop(ex, state, tid, stmt, listeners):
        left = left_run(ex, state, tid, stmt, listeners)
        right = right_run(ex, state, tid, stmt, listeners)
        return _apply_op(op, left, right)

    return run_binop


def compile_store(target: ast.LValue) -> Callable:
    """Lower an lvalue into a store closure ``(..., value) -> None``."""
    if isinstance(target, ast.LocalRef):
        name = target.name

        def store_local(ex, state, tid, stmt, listeners, value):
            state.frame_mut(tid).locals[name] = value

        return store_local

    if isinstance(target, ast.GlobalRef):
        name = target.name
        location = MemoryLocation("global", name)

        def store_global(ex, state, tid, stmt, listeners, value):
            state.memory.store_global(name, value)
            ex._emit_access(state, tid, location, True, stmt, listeners, value)

        return store_global

    if isinstance(target, ast.ArrayRef):
        name = target.name
        index_run = compile_expr(target.index)

        def store_array(ex, state, tid, stmt, listeners, value):
            index = index_run(ex, state, tid, stmt, listeners)
            index = ex._check_array_index(state, name, index)
            state.memory.store_array(name, index, value)
            ex._emit_access(
                state, tid, MemoryLocation("array", name, index), True, stmt, listeners, value
            )

        return store_array

    if isinstance(target, ast.HeapRef):
        pointer_run = compile_expr(target.pointer)
        index_run = compile_expr(target.index)

        def store_heap(ex, state, tid, stmt, listeners, value):
            pointer = pointer_run(ex, state, tid, stmt, listeners)
            pointer = int(ex._concretize(state, pointer, what="heap pointer"))
            index = index_run(ex, state, tid, stmt, listeners)
            index = int(ex._concretize(state, index, what="heap index"))
            state.memory.store_heap(pointer, index, value)
            ex._emit_access(
                state,
                tid,
                MemoryLocation("heap", str(pointer), index),
                True,
                stmt,
                listeners,
                value,
            )

        return store_heap

    rendered = repr(target)

    def store_invalid(ex, state, tid, stmt, listeners, value):  # pragma: no cover
        raise ProgramCrash(CrashKind.INVALID_POINTER, f"cannot store to {rendered}")

    return store_invalid


# --------------------------------------------------------------------------
# Statement compilation
# --------------------------------------------------------------------------


def _delegate(method) -> HandlerFn:
    """A thin handler around one of the executor's ``_exec_*`` methods."""

    def run_delegate(ex, state, tid, stmt, listeners):
        method(ex, state, tid, stmt, listeners)
        return []

    return run_delegate


def compile_stmt(stmt: ast.Stmt) -> HandlerFn:
    """Lower one statement into a dispatch handler closure."""
    if isinstance(stmt, ast.Assign):
        value_run = compile_expr(stmt.value)
        store = compile_store(stmt.target)

        def run_assign(ex, state, tid, stmt, listeners):
            store(ex, state, tid, stmt, listeners, value_run(ex, state, tid, stmt, listeners))
            return []

        return run_assign

    if isinstance(stmt, ast.If):
        cond_run = compile_expr(stmt.cond)
        then_body = stmt.then_body
        else_body = stmt.else_body

        def run_if(ex, state, tid, stmt, listeners):
            cond = cond_run(ex, state, tid, stmt, listeners)
            if not is_symbolic(cond):
                branch = then_body if cond != 0 else else_body
                if branch:
                    state.frame_mut(tid).control.append(BlockEntry(branch, 0))
                return []
            return ex._fork_branch(
                state,
                tid,
                cond,
                on_true=lambda s: Executor._enter_branch(s, tid, then_body),
                on_false=lambda s: Executor._enter_branch(s, tid, else_body),
            )

        return run_if

    if isinstance(stmt, ast.While):

        def run_while(ex, state, tid, stmt, listeners):
            state.frame_mut(tid).control.append(LoopEntry(stmt))
            return []

        return run_while

    if isinstance(stmt, ast.Output):
        channel = stmt.channel
        value_runs = tuple(compile_expr(value) for value in stmt.values)

        def run_output(ex, state, tid, stmt, listeners):
            values = tuple(
                simplify(value_run(ex, state, tid, stmt, listeners))
                for value_run in value_runs
            )
            record = OutputRecord(
                channel=channel,
                values=values,
                tid=tid,
                pc=stmt.pc,
                label=stmt.label,
                step=state.step_count,
            )
            state.append_output(record)
            listeners.on_output(state, record)
            return []

        return run_output

    if isinstance(stmt, ast.Abort):
        message = stmt.message

        def run_abort(ex, state, tid, stmt, listeners):
            raise ProgramCrash(CrashKind.EXPLICIT_ABORT, message)

        return run_abort

    if isinstance(stmt, (ast.Yield, ast.Sleep, ast.Nop)):

        def run_nop(ex, state, tid, stmt, listeners):
            return []

        return run_nop

    if isinstance(stmt, ast.Break):

        def run_break(ex, state, tid, stmt, listeners):
            ex._exec_break(state, tid)
            return []

        return run_break

    if isinstance(stmt, ast.Continue):

        def run_continue(ex, state, tid, stmt, listeners):
            ex._exec_continue(state, tid)
            return []

        return run_continue

    if isinstance(stmt, ast.CondSignal):

        def run_signal(ex, state, tid, stmt, listeners):
            ex._exec_cond_signal(state, tid, stmt, listeners, broadcast=False)
            return []

        return run_signal

    if isinstance(stmt, ast.CondBroadcast):

        def run_broadcast(ex, state, tid, stmt, listeners):
            ex._exec_cond_signal(state, tid, stmt, listeners, broadcast=True)
            return []

        return run_broadcast

    delegated = _DELEGATED_STATEMENTS.get(type(stmt))
    if delegated is not None:
        return _delegate(delegated)

    kind = type(stmt).__name__

    def run_unsupported(ex, state, tid, stmt, listeners):  # pragma: no cover
        raise ProgramCrash(CrashKind.INVALID_SYNC, f"unsupported statement {kind}")

    return run_unsupported


#: statements whose handler simply binds the matching ``_exec_*`` method at
#: compile time (sync-heavy forms where dispatch is not the bottleneck)
_DELEGATED_STATEMENTS = {
    ast.Lock: Executor._exec_lock,
    ast.Unlock: Executor._exec_unlock,
    ast.CondWait: Executor._exec_cond_wait,
    ast.BarrierWait: Executor._exec_barrier,
    ast.Spawn: Executor._exec_spawn,
    ast.Join: Executor._exec_join,
    ast.Input: Executor._exec_input,
    ast.Assert: Executor._exec_assert,
    ast.Call: Executor._exec_call,
    ast.Return: Executor._exec_return,
    ast.Malloc: Executor._exec_malloc,
    ast.Free: Executor._exec_free,
}


def _stmt_expressions(stmt: ast.Stmt) -> Iterable[ast.Expr]:
    """Top-level expressions the executor evaluates via ``self._eval``."""
    if isinstance(stmt, ast.Assign):
        yield stmt.value
        target = stmt.target
        if isinstance(target, ast.ArrayRef):
            yield target.index
        elif isinstance(target, ast.HeapRef):
            yield target.pointer
            yield target.index
    elif isinstance(stmt, (ast.If, ast.While, ast.Assert)):
        yield stmt.cond
    elif isinstance(stmt, (ast.Spawn, ast.Call)):
        yield from stmt.args
    elif isinstance(stmt, ast.Join):
        yield stmt.thread
    elif isinstance(stmt, ast.Output):
        yield from stmt.values
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.Malloc):
        yield stmt.size
    elif isinstance(stmt, ast.Free):
        yield stmt.pointer


# --------------------------------------------------------------------------
# Whole-program compilation + the fingerprint-keyed cache
# --------------------------------------------------------------------------


class CompiledProgram:
    """The pc-keyed handler table of one (finalized) program."""

    __slots__ = ("program", "fingerprint", "handlers")

    def __init__(self, program: Program, fingerprint: str, handlers: Dict[int, HandlerFn]):
        self.program = program
        self.fingerprint = fingerprint
        self.handlers = handlers


def compile_program(program: Program, fingerprint: str = "") -> CompiledProgram:
    """Compile every statement of ``program`` into a ``pc -> handler`` table."""
    if not program.finalized:
        program.finalize()
    handlers: Dict[int, HandlerFn] = {}
    for function in program.functions.values():
        for stmt in ast.iter_statements(function.body):
            handlers[stmt.pc] = compile_stmt(stmt)
    return CompiledProgram(program, fingerprint, handlers)


#: fingerprint -> CompiledProgram, shared by every executor in the process
_COMPILED_CACHE: Dict[str, CompiledProgram] = {}

#: Program -> fingerprint memo.  The fingerprint hashes ``vars(program)``
#: (see TraceCache.program_fingerprint), so it must NEVER be stashed as an
#: attribute on the program itself — that would silently change trace-cache
#: keys.  A WeakKeyDictionary leaves the instance untouched.
_FP_MEMO: "weakref.WeakKeyDictionary[Program, str]" = weakref.WeakKeyDictionary()


def program_fingerprint(program: Program) -> str:
    fingerprint = _FP_MEMO.get(program)
    if fingerprint is None:
        # Imported lazily: engine.cache is a consumer of the runtime layer.
        from repro.engine.cache import TraceCache

        fingerprint = TraceCache.program_fingerprint(program)
        _FP_MEMO[program] = fingerprint
    return fingerprint


def compiled_program_for(program: Program) -> CompiledProgram:
    """The process-wide compiled form of ``program``.

    Keyed by content fingerprint: fingerprint-equal programs have identical
    statements at identical pcs (finalize assigns pcs deterministically), so
    a table compiled from one instance drives any other — which is what lets
    pool workers compile once per workload even though the task layer
    rebuilds ``Program`` objects from the registry per task.
    """
    fingerprint = program_fingerprint(program)
    entry = _COMPILED_CACHE.get(fingerprint)
    if entry is None:
        entry = compile_program(program, fingerprint)
        _COMPILED_CACHE[fingerprint] = entry
    return entry


def reset_compiled_cache() -> None:
    """Drop compiled programs (called by fresh pool workers)."""
    _COMPILED_CACHE.clear()
    _FP_MEMO.clear()


def compiled_cache_info() -> Dict[str, int]:
    return {"programs": len(_COMPILED_CACHE)}


# --------------------------------------------------------------------------
# The compiled executor
# --------------------------------------------------------------------------


class CompiledExecutor(Executor):
    """An :class:`Executor` that dispatches through compiled handler tables.

    Semantics are bit-identical to the tree walker; only the dispatch
    mechanism changes.  ``_dispatch`` is a dict hit on ``stmt.pc``;
    ``_eval`` resolves expressions through a per-executor id-keyed table
    seeded at construction (covering every expression the delegated
    ``_exec_*`` methods and the loop stepper evaluate), compiling unseen
    expressions on first use.
    """

    interp = "compiled"

    def __init__(
        self,
        program: Program,
        solver: Optional[Solver] = None,
        config: Optional[ExecutorConfig] = None,
    ) -> None:
        super().__init__(program, solver=solver, config=config)
        self._compiled = compiled_program_for(self.program)
        self._handlers = self._compiled.handlers
        # id(expr) -> (expr, evaluator).  Keyed by identity because Expr
        # nodes are frozen dataclasses whose value-equality hash walks the
        # whole tree; the paired expr reference guards against id reuse and
        # keeps the key's referent alive.
        self._evaluators: Dict[int, Tuple[ast.Expr, EvalFn]] = {}
        for function in self.program.functions.values():
            for stmt in ast.iter_statements(function.body):
                for expr in _stmt_expressions(stmt):
                    key = id(expr)
                    if key not in self._evaluators:
                        self._evaluators[key] = (expr, compile_expr(expr))

    def _dispatch(self, state, tid, stmt, listeners):
        handler = self._handlers.get(stmt.pc)
        if handler is None:  # pragma: no cover - unfinalized/foreign statement
            return Executor._dispatch(self, state, tid, stmt, listeners)
        return handler(self, state, tid, stmt, listeners)

    def _eval(self, state, tid, expr, stmt, listeners):
        entry = self._evaluators.get(id(expr))
        if entry is not None and entry[0] is expr:
            return entry[1](self, state, tid, stmt, listeners)
        run = compile_expr(expr)
        if isinstance(expr, ast.Expr):
            self._evaluators[id(expr)] = (expr, run)
        return run(self, state, tid, stmt, listeners)


def create_executor(
    program: Program,
    interp: str = "tree",
    solver: Optional[Solver] = None,
    config: Optional[ExecutorConfig] = None,
) -> Executor:
    """Build the executor for an ``--interp`` mode name."""
    if interp not in INTERP_MODES:
        raise ValueError(
            f"unknown interpreter {interp!r}; choose from {', '.join(INTERP_MODES)}"
        )
    cls = CompiledExecutor if interp == "compiled" else Executor
    return cls(program, solver=solver, config=config)
