"""POSIX-style synchronisation objects and the wait-for graph.

Portend "treats all POSIX threads synchronization primitives as possible
preemption points" and keeps a lock graph to detect deadlocks (§3.1, §3.5).
This module provides the mutable synchronisation state of one execution
state plus the deadlock-detection helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.program import Program
from repro.runtime.errors import CrashKind, ProgramCrash


@dataclass
class MutexState:
    """A mutex: owning thread (or None) and the threads waiting for it."""

    name: str
    owner: Optional[int] = None
    waiters: List[int] = field(default_factory=list)

    def clone(self) -> "MutexState":
        return MutexState(self.name, self.owner, list(self.waiters))


@dataclass
class CondVarState:
    """A condition variable: the set of threads blocked in ``wait``."""

    name: str
    waiters: List[int] = field(default_factory=list)

    def clone(self) -> "CondVarState":
        return CondVarState(self.name, list(self.waiters))


@dataclass
class BarrierState:
    """A cyclic barrier with a fixed party count."""

    name: str
    parties: int
    arrived: List[int] = field(default_factory=list)
    generation: int = 0

    def clone(self) -> "BarrierState":
        return BarrierState(self.name, self.parties, list(self.arrived), self.generation)


class SyncState:
    """All synchronisation objects of one execution state.

    Cloning is copy-on-write at whole-layer granularity: sync state is a
    handful of small objects, so the first mutation after a fork re-copies
    all of them at once (one materialization) rather than tracking per-object
    ownership.  Mutators must go through the ``*_mut`` accessors; the plain
    accessors are read-only views.
    """

    def __init__(self, program: Program) -> None:
        self.mutexes: Dict[str, MutexState] = {
            name: MutexState(name) for name in program.mutexes
        }
        self.condvars: Dict[str, CondVarState] = {
            name: CondVarState(name) for name in program.condvars
        }
        self.barriers: Dict[str, BarrierState] = {
            name: BarrierState(name, parties) for name, parties in program.barriers.items()
        }
        self._owned = True
        self.counters = None

    def clone(self) -> "SyncState":
        """A copy-on-write clone; both sides relinquish ownership."""
        copy = SyncState.__new__(SyncState)
        copy.mutexes = self.mutexes
        copy.condvars = self.condvars
        copy.barriers = self.barriers
        copy.counters = self.counters
        self._owned = False
        copy._owned = False
        return copy

    def clone_eager(self) -> "SyncState":
        """The pre-COW deep clone, kept for A/B benchmarks and tests."""
        copy = SyncState.__new__(SyncState)
        copy.mutexes = {name: m.clone() for name, m in self.mutexes.items()}
        copy.condvars = {name: c.clone() for name, c in self.condvars.items()}
        copy.barriers = {name: b.clone() for name, b in self.barriers.items()}
        copy._owned = True
        copy.counters = self.counters
        return copy

    def __deepcopy__(self, memo: dict) -> "SyncState":
        return self.clone()

    def _materialize(self) -> None:
        if self._owned:
            return
        self.mutexes = {name: m.clone() for name, m in self.mutexes.items()}
        self.condvars = {name: c.clone() for name, c in self.condvars.items()}
        self.barriers = {name: b.clone() for name, b in self.barriers.items()}
        self._owned = True
        if self.counters is not None:
            self.counters.cow_copies += 1

    # ----------------------------------------------------------------- lookup

    def mutex(self, name: str) -> MutexState:
        try:
            return self.mutexes[name]
        except KeyError as exc:
            raise ProgramCrash(
                CrashKind.INVALID_SYNC, f"use of undeclared mutex {name!r}"
            ) from exc

    def condvar(self, name: str) -> CondVarState:
        try:
            return self.condvars[name]
        except KeyError as exc:
            raise ProgramCrash(
                CrashKind.INVALID_SYNC, f"use of undeclared condition variable {name!r}"
            ) from exc

    def barrier(self, name: str) -> BarrierState:
        try:
            return self.barriers[name]
        except KeyError as exc:
            raise ProgramCrash(
                CrashKind.INVALID_SYNC, f"use of undeclared barrier {name!r}"
            ) from exc

    # ------------------------------------------------------ mutating accessors

    def mutex_mut(self, name: str) -> MutexState:
        self.mutex(name)  # canonical crash on undeclared names
        self._materialize()
        return self.mutexes[name]

    def condvar_mut(self, name: str) -> CondVarState:
        self.condvar(name)
        self._materialize()
        return self.condvars[name]

    def barrier_mut(self, name: str) -> BarrierState:
        self.barrier(name)
        self._materialize()
        return self.barriers[name]

    # --------------------------------------------------------- deadlock check

    def wait_for_edges(self, blocked_on: Dict[int, Tuple[str, object]]) -> List[Tuple[int, int]]:
        """Edges ``waiter -> owner`` of the wait-for graph over mutexes."""
        edges: List[Tuple[int, int]] = []
        for tid, reason in blocked_on.items():
            if reason is None:
                continue
            kind, target = reason
            if kind in ("mutex", "mutex-reacquire"):
                owner = self.mutex(str(target)).owner
                if owner is not None and owner != tid:
                    edges.append((tid, owner))
        return edges

    def find_lock_cycle(
        self, blocked_on: Dict[int, Tuple[str, object]]
    ) -> Optional[List[int]]:
        """Find a cycle in the mutex wait-for graph, if any.

        Returns the list of thread ids on the cycle (in order) or None.
        """
        edges = self.wait_for_edges(blocked_on)
        graph: Dict[int, int] = {src: dst for src, dst in edges}
        for start in graph:
            seen: List[int] = []
            node = start
            while node in graph:
                if node in seen:
                    return seen[seen.index(node):]
                seen.append(node)
                node = graph[node]
        return None
