"""Scheduling policies for the single-processor cooperative scheduler.

Portend uses "a single-processor cooperative thread scheduler" (§3.1) and can
"preempt and schedule threads before/after synchronization operations and/or
racing accesses".  The executor consults a :class:`SchedulePolicy` at every
*preemption point*:

* a synchronisation statement is about to execute (``reason="sync"``),
* the current thread blocked, finished or does not exist (``reason="blocked"``),
* the next statement's pc is *watched*, i.e. it is one of the racing accesses
  under analysis (``reason="watched"``), or the previous statement executed by
  the thread was watched (``reason="after-watched"``).

Recording runs use :class:`RoundRobinPolicy`; replays use
:class:`ReplayPolicy`; Portend's analyses wrap either in a
:class:`ControlledPolicy` to steer the executions toward the primary or the
alternate ordering of the racing accesses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.state import ExecutionState


@dataclass(frozen=True)
class ScheduleDecision:
    """A committed scheduling decision, as recorded in schedule traces."""

    index: int
    tid: int
    pc: int
    step: int
    reason: str


class SchedulePolicy:
    """Base class: decide which runnable thread runs next."""

    #: when True, the executor records this policy's decisions in the trace
    recordable: bool = True

    def choose(
        self,
        state: "ExecutionState",
        runnable: Sequence[int],
        current: Optional[int],
        reason: str,
    ) -> Optional[int]:
        """Return the tid to schedule, or None if no choice can be made."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal cursors (used when a policy is reused)."""


class RoundRobinPolicy(SchedulePolicy):
    """Fair round-robin at preemption points.

    At a sync preemption point the next runnable thread (in cyclic tid order
    after the current one) is chosen, which interleaves threads at every
    synchronisation operation; at watched points the current thread is kept
    (watched points only matter to ControlledPolicy).
    """

    def choose(self, state, runnable, current, reason) -> Optional[int]:
        if not runnable:
            return None
        if reason in ("watched", "after-watched") and current in runnable:
            return current
        if current is None or current not in state.threads:
            return min(runnable)
        ordered = sorted(runnable)
        for tid in ordered:
            if tid > current:
                return tid
        return ordered[0]


class CooperativePolicy(SchedulePolicy):
    """Keep the current thread running until it blocks or finishes."""

    def choose(self, state, runnable, current, reason) -> Optional[int]:
        if not runnable:
            return None
        if current in runnable:
            return current
        return min(runnable)


class RandomPolicy(SchedulePolicy):
    """Uniformly random choice among runnable threads at preemption points.

    Used by multi-schedule analysis (§3.4): "at every preemption point in the
    alternate, Portend randomly decides which of the runnable threads to
    schedule next".
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    def reset(self) -> None:
        self.rng = random.Random(self.seed)

    def choose(self, state, runnable, current, reason) -> Optional[int]:
        if not runnable:
            return None
        return self.rng.choice(sorted(runnable))


class ReplayPolicy(SchedulePolicy):
    """Replay the scheduling decisions stored in a schedule trace.

    The policy walks the recorded decisions in order.  If the recorded thread
    is not runnable (or the trace is exhausted), the policy marks itself as
    *diverged* and falls back to a deterministic round-robin choice; callers
    that need strict replay (the multi-path explorer pruning paths that do
    not obey the trace, §3.3) check :attr:`diverged`.
    """

    def __init__(self, decisions: Sequence[ScheduleDecision], fallback: Optional[SchedulePolicy] = None) -> None:
        self.decisions = list(decisions)
        self.cursor = 0
        self.diverged = False
        self.divergence_step: Optional[int] = None
        self.divergence_reason: Optional[str] = None
        self.skipped_decisions: List[ScheduleDecision] = []
        self.fallback = fallback or RoundRobinPolicy()

    def reset(self) -> None:
        self.cursor = 0
        self.diverged = False
        self.divergence_step = None
        self.divergence_reason = None
        self.skipped_decisions = []
        self.fallback.reset()

    def remaining(self) -> int:
        return len(self.decisions) - self.cursor

    def choose(self, state, runnable, current, reason) -> Optional[int]:
        if not runnable:
            return None
        if reason in ("watched", "after-watched"):
            # Watched preemption points are introduced by the analysis and are
            # not part of the recorded trace: keep the current thread.
            if current in runnable:
                return current
            return self.fallback.choose(state, runnable, current, reason)
        if self.cursor < len(self.decisions):
            decision = self.decisions[self.cursor]
            self.cursor += 1
            if decision.tid in runnable:
                return decision.tid
            # The decision is consumed and the replay diverges permanently,
            # even when the recorded tid is merely blocked right now; keep
            # the skipped decision and the reason so the multi-path explorer
            # (§3.3) can report *why* a path was pruned.
            self.skipped_decisions.append(decision)
            self._mark_diverged(state, self._describe_unrunnable(state, decision))
            return self.fallback.choose(state, runnable, current, reason)
        self._mark_diverged(state, "recorded schedule exhausted")
        return self.fallback.choose(state, runnable, current, reason)

    def _describe_unrunnable(self, state, decision: ScheduleDecision) -> str:
        thread = getattr(state, "threads", {}).get(decision.tid)
        if thread is None:
            status = "not yet created"
        elif getattr(thread, "is_blocked", False):
            status = "blocked"
        elif getattr(thread, "is_finished", False):
            status = "finished"
        else:
            status = "not runnable"
        return (
            f"recorded tid {decision.tid} {status} at decision "
            f"{decision.index} (recorded step {decision.step})"
        )

    def _mark_diverged(self, state, reason: str) -> None:
        if not self.diverged:
            self.diverged = True
            self.divergence_step = state.step_count
            self.divergence_reason = reason


class ControlledPolicy(SchedulePolicy):
    """Wrap a base policy with analysis-driven overrides.

    Portend enforces the alternate ordering of a race by (a) forbidding the
    thread that performed the first racing access from running and (b)
    forcing the other racing thread to run, until it has performed its access
    (Algorithm 1, lines 5-7).  The executor consults the wrapped base policy
    whenever no override applies.
    """

    def __init__(self, base: SchedulePolicy) -> None:
        self.base = base
        self.forbidden: Set[int] = set()
        self.forced: Optional[int] = None
        self.preferred: Optional[int] = None
        self.stuck = False
        self.stuck_reason: Optional[str] = None

    @property
    def recordable(self) -> bool:  # type: ignore[override]
        return self.base.recordable

    def reset(self) -> None:
        self.base.reset()
        self.forbidden.clear()
        self.forced = None
        self.preferred = None
        self.stuck = False
        self.stuck_reason = None

    # ------------------------------------------------------------- directives

    def forbid(self, tid: int) -> None:
        self.forbidden.add(tid)

    def allow(self, tid: int) -> None:
        self.forbidden.discard(tid)

    def allow_all(self) -> None:
        self.forbidden.clear()

    def force(self, tid: Optional[int]) -> None:
        self.forced = tid

    def prefer(self, tid: Optional[int]) -> None:
        """Schedule ``tid`` whenever it is runnable, without getting stuck
        when it is not (other allowed threads keep running, e.g. to spawn or
        unblock it)."""
        self.preferred = tid

    # ----------------------------------------------------------------- choice

    def choose(self, state, runnable, current, reason) -> Optional[int]:
        allowed = [tid for tid in runnable if tid not in self.forbidden]
        if self.forced is not None:
            if self.forced in allowed:
                return self.forced
            # The thread we must run is blocked or forbidden: scheduling is
            # stuck; Algorithm 1 detects this via timeout / deadlock checks.
            self.stuck = True
            self.stuck_reason = f"forced thread {self.forced} not runnable"
            return None
        if not allowed:
            if runnable:
                self.stuck = True
                self.stuck_reason = "all runnable threads are forbidden"
            return None
        if self.preferred is not None and self.preferred in allowed:
            return self.preferred
        choice = self.base.choose(state, allowed, current if current in allowed else None, reason)
        if choice is None or choice not in allowed:
            return allowed[0] if allowed else None
        return choice
