"""Execution substrate: the reproduction's stand-in for Cloud9/KLEE.

The runtime interprets :mod:`repro.lang` programs with:

* a shared-memory model (globals, arrays, heap) with error detection
  (out-of-bounds, double free, use after free, division by zero),
* a POSIX-threads model (mutexes, condition variables, barriers, join),
* a single-processor cooperative scheduler with pluggable policies
  (round-robin, random, replay-from-trace, controlled) and explicit
  preemption points at synchronisation operations and watched (racy)
  accesses,
* symbolic execution: program inputs can be marked symbolic, branches on
  symbolic conditions fork the execution state and extend its path
  condition, and
* an event/listener interface used by the race detector, the trace
  recorder and Portend's analyses.
"""

from repro.runtime.errors import (
    CrashKind,
    CrashInfo,
    ExecutionOutcome,
    OutcomeKind,
)
from repro.runtime.memory import Memory, MemoryLocation
from repro.runtime.state import ExecutionState, OutputRecord, InputRecord
from repro.runtime.threadstate import ThreadState, ThreadStatus, Frame, StackEntry
from repro.runtime.scheduler import (
    SchedulePolicy,
    RoundRobinPolicy,
    RandomPolicy,
    ReplayPolicy,
    ControlledPolicy,
    ScheduleDecision,
)
from repro.runtime.listeners import ExecutionListener, MemoryAccess, SyncEvent
from repro.runtime.executor import Executor, ExecutorConfig, RunResult, RunStatus

__all__ = [
    "CrashKind",
    "CrashInfo",
    "ExecutionOutcome",
    "OutcomeKind",
    "Memory",
    "MemoryLocation",
    "ExecutionState",
    "OutputRecord",
    "InputRecord",
    "ThreadState",
    "ThreadStatus",
    "Frame",
    "StackEntry",
    "SchedulePolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "ReplayPolicy",
    "ControlledPolicy",
    "ScheduleDecision",
    "ExecutionListener",
    "MemoryAccess",
    "SyncEvent",
    "Executor",
    "ExecutorConfig",
    "RunResult",
    "RunStatus",
]
