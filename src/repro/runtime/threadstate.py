"""Per-thread execution state: call stack, status and blocking reason."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang.ast import Stmt, While
from repro.symex.expr import Value


class ThreadStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class BlockEntry:
    """A statement block being executed; ``index`` points at the next stmt."""

    stmts: Tuple[Stmt, ...]
    index: int = 0

    def exhausted(self) -> bool:
        return self.index >= len(self.stmts)

    def clone(self) -> "BlockEntry":
        return BlockEntry(self.stmts, self.index)


@dataclass
class LoopEntry:
    """A ``while`` loop whose condition is about to be (re-)evaluated."""

    stmt: While
    iterations: int = 0

    def clone(self) -> "LoopEntry":
        return LoopEntry(self.stmt, self.iterations)


ControlEntry = Union[BlockEntry, LoopEntry]


@dataclass
class Frame:
    """A call-stack frame: locals plus a control stack of nested blocks.

    ``version`` implements copy-on-write forking: a frame is privately owned
    by its thread iff ``frame.version == thread.version``.  A state fork
    bumps the owning state's epoch on both sides (see
    :meth:`repro.runtime.state.ExecutionState.clone`), so every shared frame
    is lazily re-copied by :meth:`ExecutionState.frame_mut` before its first
    mutation after the fork.
    """

    function: str
    locals: Dict[str, Value]
    control: List[ControlEntry]
    return_target: Optional[str] = None
    call_label: str = ""
    version: int = 0

    def clone(self) -> "Frame":
        return Frame(
            function=self.function,
            locals=dict(self.locals),
            control=[entry.clone() for entry in self.control],
            return_target=self.return_target,
            call_label=self.call_label,
            version=self.version,
        )

    def cow_copy(self, version: int) -> "Frame":
        """A privately-owned copy: one locals dict and one control stack."""
        return Frame(
            function=self.function,
            locals=dict(self.locals),
            control=[entry.clone() for entry in self.control],
            return_target=self.return_target,
            call_label=self.call_label,
            version=version,
        )


@dataclass(frozen=True)
class StackEntry:
    """One entry of a report-friendly stack trace."""

    function: str
    label: str

    def describe(self) -> str:
        return f"{self.function} at {self.label}"


@dataclass
class ThreadState:
    """Everything the scheduler and interpreter need to know about a thread."""

    tid: int
    entry_function: str
    frames: List[Frame] = field(default_factory=list)
    status: ThreadStatus = ThreadStatus.RUNNABLE
    blocked_on: Optional[Tuple[str, object]] = None
    pending_reacquire: Optional[str] = None
    held_mutexes: List[str] = field(default_factory=list)
    steps: int = 0
    result: Optional[Value] = None
    #: copy-on-write epoch: owned by a state iff == that state's cow_version
    version: int = 0

    def clone(self) -> "ThreadState":
        return ThreadState(
            tid=self.tid,
            entry_function=self.entry_function,
            frames=[frame.clone() for frame in self.frames],
            status=self.status,
            blocked_on=self.blocked_on,
            pending_reacquire=self.pending_reacquire,
            held_mutexes=list(self.held_mutexes),
            steps=self.steps,
            result=self.result,
            version=self.version,
        )

    def cow_copy(self, version: int) -> "ThreadState":
        """A shallow privately-owned copy: frames stay shared until mutated.

        The frame list itself is copied (so pushes/pops and per-frame
        replacement are private) but the :class:`Frame` objects are shared;
        they carry ``version == old epoch`` and are re-copied lazily by
        :meth:`ExecutionState.frame_mut` before mutation.
        """
        return ThreadState(
            tid=self.tid,
            entry_function=self.entry_function,
            frames=list(self.frames),
            status=self.status,
            blocked_on=self.blocked_on,
            pending_reacquire=self.pending_reacquire,
            held_mutexes=list(self.held_mutexes),
            steps=self.steps,
            result=self.result,
            version=version,
        )

    # ------------------------------------------------------------- inspection

    @property
    def is_runnable(self) -> bool:
        return self.status is ThreadStatus.RUNNABLE

    @property
    def is_finished(self) -> bool:
        return self.status is ThreadStatus.FINISHED

    @property
    def is_blocked(self) -> bool:
        return self.status is ThreadStatus.BLOCKED

    def current_frame(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    def next_statement(self) -> Optional[Stmt]:
        """The statement this thread will execute on its next step.

        Assumes the control stack is normalised (exhausted blocks popped);
        for a :class:`LoopEntry` the ``while`` statement itself is returned,
        because the next step evaluates its condition.
        """
        frame = self.current_frame()
        if frame is None or not frame.control:
            return None
        top = frame.control[-1]
        if isinstance(top, LoopEntry):
            return top.stmt
        if isinstance(top, BlockEntry) and not top.exhausted():
            return top.stmts[top.index]
        return None

    def stack_trace(self, program=None) -> Tuple[StackEntry, ...]:
        """Report-friendly stack trace (innermost frame last)."""
        entries: List[StackEntry] = []
        for frame in self.frames:
            stmt = None
            for entry in reversed(frame.control):
                if isinstance(entry, LoopEntry):
                    stmt = entry.stmt
                    break
                if isinstance(entry, BlockEntry) and not entry.exhausted():
                    stmt = entry.stmts[entry.index]
                    break
            label = stmt.label if stmt is not None else frame.call_label or "<return>"
            entries.append(StackEntry(frame.function, label))
        return tuple(entries)
