"""Execution events and the listener interface.

The executor publishes events to listeners as the interpreted program runs;
the dynamic race detector, the trace recorder and Portend's specification
checker are all listeners.  Listeners must not mutate the execution state
(with the documented exception of :class:`repro.core.spec.SpecChecker`, which
may terminate a state when a semantic predicate fails).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, TYPE_CHECKING

from repro.runtime.memory import MemoryLocation
from repro.runtime.threadstate import StackEntry
from repro.symex.expr import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.state import ExecutionState


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic access to a shared-memory location."""

    tid: int
    location: MemoryLocation
    is_write: bool
    pc: int
    label: str
    step: int
    stack: Tuple[StackEntry, ...] = ()
    value: Optional[Value] = None

    @property
    def kind(self) -> str:
        return "WRITE" if self.is_write else "READ"

    def describe(self) -> str:
        return (
            f"{self.kind} of {self.location.describe()} by thread {self.tid} "
            f"at {self.label or self.pc}"
        )


@dataclass(frozen=True)
class SyncEvent:
    """A synchronisation operation observed during execution.

    ``kind`` is one of: ``lock``, ``unlock``, ``cond_wait``, ``cond_signal``,
    ``cond_broadcast``, ``barrier_release``, ``spawn``, ``join``, ``exit``.
    ``peer`` identifies the other party when relevant (child/joined tid, or
    the set of released tids for barriers and broadcasts).
    """

    tid: int
    kind: str
    target: str
    pc: int
    step: int
    peer: Optional[Tuple[int, ...]] = None


class ExecutionListener:
    """Base listener with no-op callbacks; subclass and override as needed."""

    def on_step(self, state: "ExecutionState", tid: int, pc: int) -> None:
        """Called after every interpreter step."""

    def on_access(self, state: "ExecutionState", access: MemoryAccess) -> None:
        """Called for every shared-memory read and write."""

    def on_sync(self, state: "ExecutionState", event: SyncEvent) -> None:
        """Called for every synchronisation operation."""

    def on_schedule(
        self, state: "ExecutionState", chosen_tid: int, previous_tid: Optional[int], reason: str
    ) -> None:
        """Called whenever the scheduler makes (and commits) a decision."""

    def on_output(self, state: "ExecutionState", record) -> None:
        """Called when the program emits output (a ``write`` system call)."""

    def on_input(self, state: "ExecutionState", record) -> None:
        """Called when the program consumes an input (system-call return)."""

    def on_finish(self, state: "ExecutionState") -> None:
        """Called once when the state reaches a terminal outcome."""


class ListenerGroup(ExecutionListener):
    """Fans events out to an ordered collection of listeners."""

    def __init__(self, listeners: Sequence[ExecutionListener] = ()) -> None:
        self.listeners = list(listeners)

    def add(self, listener: ExecutionListener) -> None:
        self.listeners.append(listener)

    def on_step(self, state, tid, pc) -> None:
        for listener in self.listeners:
            listener.on_step(state, tid, pc)

    def on_access(self, state, access) -> None:
        for listener in self.listeners:
            listener.on_access(state, access)

    def on_sync(self, state, event) -> None:
        for listener in self.listeners:
            listener.on_sync(state, event)

    def on_schedule(self, state, chosen_tid, previous_tid, reason) -> None:
        for listener in self.listeners:
            listener.on_schedule(state, chosen_tid, previous_tid, reason)

    def on_output(self, state, record) -> None:
        for listener in self.listeners:
            listener.on_output(state, record)

    def on_input(self, state, record) -> None:
        for listener in self.listeners:
            listener.on_input(state, record)

    def on_finish(self, state) -> None:
        for listener in self.listeners:
            listener.on_finish(state)
