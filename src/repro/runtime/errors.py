"""Execution outcomes and crash information.

The original Portend watches for "basic" specification violations -- crashes
(memory errors, division by zero, assertion failures), deadlocks and infinite
loops (§3.5).  The runtime reports all of these through
:class:`ExecutionOutcome`, which the classifier then inspects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


class CrashKind(enum.Enum):
    """The kind of crash that terminated an execution."""

    DIVISION_BY_ZERO = "division by zero"
    OUT_OF_BOUNDS = "out-of-bounds memory access"
    DOUBLE_FREE = "double free"
    USE_AFTER_FREE = "use after free"
    INVALID_POINTER = "invalid pointer"
    ASSERTION_FAILURE = "assertion failure"
    EXPLICIT_ABORT = "abort"
    INVALID_SYNC = "invalid synchronisation usage"
    SEMANTIC_VIOLATION = "semantic property violation"


@dataclass(frozen=True)
class CrashInfo:
    """Details of a crash: what, where, and in which thread."""

    kind: CrashKind
    message: str
    tid: int
    pc: int
    label: str = ""
    stack: Tuple[str, ...] = ()

    def describe(self) -> str:
        where = self.label or f"pc={self.pc}"
        return f"{self.kind.value}: {self.message} (thread {self.tid} at {where})"

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind.value,
            "message": self.message,
            "tid": self.tid,
            "pc": self.pc,
            "label": self.label,
            "stack": list(self.stack),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CrashInfo":
        return cls(
            kind=CrashKind(data["kind"]),
            message=data["message"],
            tid=data["tid"],
            pc=data["pc"],
            label=data["label"],
            stack=tuple(data["stack"]),
        )


class OutcomeKind(enum.Enum):
    """How an execution terminated."""

    DONE = "completed"
    CRASH = "crash"
    DEADLOCK = "deadlock"
    LOOP_LIMIT = "loop iteration limit"
    INFEASIBLE = "infeasible path"


@dataclass(frozen=True)
class ExecutionOutcome:
    """Terminal status of an execution state."""

    kind: OutcomeKind
    crash: Optional[CrashInfo] = None
    detail: str = ""
    blocked_threads: Tuple[int, ...] = ()

    @property
    def is_failure(self) -> bool:
        """True when this outcome is a basic specification violation."""
        return self.kind in (OutcomeKind.CRASH, OutcomeKind.DEADLOCK)

    def describe(self) -> str:
        if self.kind is OutcomeKind.CRASH and self.crash is not None:
            return self.crash.describe()
        if self.kind is OutcomeKind.DEADLOCK:
            blocked = ", ".join(str(t) for t in self.blocked_threads)
            return f"deadlock (blocked threads: {blocked})"
        return self.detail or self.kind.value

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        """JSON-serializable form (shipped primaries carry their outcome)."""
        return {
            "kind": self.kind.value,
            "crash": self.crash.to_dict() if self.crash is not None else None,
            "detail": self.detail,
            "blocked_threads": list(self.blocked_threads),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExecutionOutcome":
        crash = data["crash"]
        return cls(
            kind=OutcomeKind(data["kind"]),
            crash=CrashInfo.from_dict(crash) if crash is not None else None,
            detail=data["detail"],
            blocked_threads=tuple(data["blocked_threads"]),
        )


class ProgramCrash(Exception):
    """Internal signal raised while executing a statement that crashes.

    The executor converts it into a CRASH outcome on the state; it never
    escapes :meth:`repro.runtime.executor.Executor.step`.
    """

    def __init__(self, kind: CrashKind, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


class RetrySignal(Exception):
    """Internal signal: the statement blocked and must be re-executed later.

    Raised when e.g. a ``Lock`` finds the mutex held; the executor rolls the
    thread's instruction pointer back so the statement re-runs once the
    thread is woken.
    """
