"""Table 1: programs analyzed with Portend (size, language, forked threads)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workloads import Workload, all_workloads


@dataclass
class Table1Row:
    program: str
    model_loc: int
    paper_loc: int
    language: str
    forked_threads: int
    paper_forked_threads: int


def run(workloads: Optional[Sequence[Workload]] = None) -> List[Table1Row]:
    workloads = list(workloads) if workloads is not None else all_workloads()
    rows = []
    for workload in workloads:
        rows.append(
            Table1Row(
                program=workload.name,
                model_loc=workload.lines_of_code(),
                paper_loc=workload.paper_loc,
                language=workload.paper_language,
                forked_threads=workload.forked_threads(),
                paper_forked_threads=workload.paper_forked_threads,
            )
        )
    return rows


def render(rows: Sequence[Table1Row]) -> str:
    header = (
        f"{'Program':<12} {'Model LoC':>9} {'Paper LoC':>9} {'Lang':>5} "
        f"{'Threads':>8} {'Paper threads':>13}"
    )
    lines = ["Table 1: programs analyzed with Portend", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.model_loc:>9} {row.paper_loc:>9} {row.language:>5} "
            f"{row.forked_threads:>8} {row.paper_forked_threads:>13}"
        )
    return "\n".join(lines)
