"""Table 2: "spec violated" races and their consequences.

Covers the five harmful races found with basic properties (one deadlock in
SQLite, crashes in pbzip2/ctrace), the fmm semantic-predicate race (§5.1) and
the memcached what-if race obtained by turning a synchronisation operation
into a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.categories import RaceClass, SpecViolationKind
from repro.core.config import PortendConfig
from repro.experiments.runner import analyze_workload
from repro.workloads import load_workload
from repro.workloads.memcached import build_memcached

#: programs whose default analysis contributes rows to Table 2
_DEFAULT_PROGRAMS = ("SQLite", "pbzip2", "ctrace", "memcached")


@dataclass
class Table2Row:
    program: str
    total_races: int
    deadlocks: int = 0
    crashes: int = 0
    semantic: int = 0


def _count(classified, kind: SpecViolationKind) -> int:
    return sum(
        1
        for item in classified
        if item.classification is RaceClass.SPEC_VIOLATED
        and item.evidence.spec_violation_kind is kind
    )


def run(
    config: Optional[PortendConfig] = None,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
    granularity: str = "auto",
    dispatch: str = "streaming",
    solver: Optional[str] = None,
    events: Optional[str] = None,
    chunk_target_ms: int = 500,
    warm_tier: Optional[bool] = None,
    speculate: Optional[bool] = None,
    interp: Optional[str] = None,
) -> List[Table2Row]:
    config = config or PortendConfig()
    rows: List[Table2Row] = []

    for name in _DEFAULT_PROGRAMS:
        workload = load_workload(name)
        if name == "memcached":
            # The paper's memcached crash comes from the what-if experiment:
            # an intentionally removed synchronisation operation (§5.1).
            workload = build_memcached(remove_slab_lock=True)
        run_result = analyze_workload(
            workload,
            config=config,
            parallel=parallel,
            cache_dir=cache_dir,
            granularity=granularity,
            dispatch=dispatch,
            solver=solver,
            events=events,
            chunk_target_ms=chunk_target_ms,
            warm_tier=warm_tier,
            speculate=speculate,
            interp=interp,
        )
        classified = run_result.result.classified
        rows.append(
            Table2Row(
                program=name,
                total_races=run_result.result.distinct_races(),
                deadlocks=_count(classified, SpecViolationKind.DEADLOCK)
                + _count(classified, SpecViolationKind.INFINITE_LOOP),
                crashes=_count(classified, SpecViolationKind.CRASH),
                semantic=_count(classified, SpecViolationKind.SEMANTIC),
            )
        )

    # fmm contributes a semantic violation only when the timestamp predicate
    # is enabled (§5.1).
    fmm = load_workload("fmm")
    fmm_run = analyze_workload(
        fmm,
        config=config,
        use_semantic_predicates=True,
        parallel=parallel,
        cache_dir=cache_dir,
        granularity=granularity,
        dispatch=dispatch,
        solver=solver,
        events=events,
        chunk_target_ms=chunk_target_ms,
        warm_tier=warm_tier,
        speculate=speculate,
        interp=interp,
    )
    rows.insert(
        3,
        Table2Row(
            program="fmm",
            total_races=fmm_run.result.distinct_races(),
            semantic=_count(fmm_run.result.classified, SpecViolationKind.SEMANTIC),
        ),
    )
    return rows


def render(rows: Sequence[Table2Row]) -> str:
    header = f"{'Program':<12} {'Races':>6} {'Deadlock':>9} {'Crash':>6} {'Semantic':>9}"
    lines = ['Table 2: "spec violated" races and their consequences', header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.total_races:>6} {row.deadlocks:>9} "
            f"{row.crashes:>6} {row.semantic:>9}"
        )
    return "\n".join(lines)
