"""Shared experiment driver: run Portend over workloads and keep the results.

The driver is a thin wrapper over :class:`repro.engine.AnalysisEngine`: it
builds the engine for the requested batch (optionally parallel, optionally
trace-cached) and repackages the engine's per-workload results into
:class:`WorkloadRun` records that the table/figure modules consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.config import PortendConfig
from repro.core.portend import Portend, PortendResult
from repro.engine import AnalysisEngine, EngineOptions
from repro.runtime.executor import Executor
from repro.workloads import Workload, all_workloads, load_workload


@dataclass
class WorkloadRun:
    """Portend's results for one workload under one configuration."""

    workload: Workload
    result: PortendResult
    config: PortendConfig
    plain_interpretation_seconds: float = 0.0
    used_semantic_predicates: bool = False

    @property
    def name(self) -> str:
        return self.workload.name


def plain_interpretation_time(workload: Workload) -> float:
    """Time to interpret the program concretely, without detection/classification.

    This reproduces Table 4's "Cloud9 running time" column: the baseline cost
    of running the program in the interpreter with both race detection and
    classification disabled.
    """
    executor = Executor(workload.program)
    state = executor.initial_state(concrete_inputs=workload.inputs)
    started = time.perf_counter()
    executor.run(state)
    return time.perf_counter() - started


def _engine(
    config: Optional[PortendConfig],
    use_semantic_predicates: bool,
    parallel: int,
    cache_dir: Optional[str],
    granularity: str,
    cache_max_entries: Optional[int] = None,
    dispatch: str = "streaming",
    solver: Optional[str] = None,
    events: Optional[str] = None,
    chunk_target_ms: int = 500,
    warm_tier: Optional[bool] = None,
    speculate: Optional[bool] = None,
    interp: Optional[str] = None,
    fault_plan: Optional[str] = None,
    max_pool_respawns: Optional[int] = None,
    max_task_retries: Optional[int] = None,
    task_deadline_ms: Optional[int] = None,
) -> AnalysisEngine:
    if solver is not None:
        config = replace(config or PortendConfig(), solver_backend=solver)
    if interp is not None:
        config = replace(config or PortendConfig(), interp=interp)
    # warm_tier/speculate -- and the fault-tolerance knobs below -- stay
    # tri-state: None defers to the EngineOptions environment defaults
    # (REPRO_WARM_TIER / REPRO_SPECULATE / REPRO_FAULT_PLAN /
    # REPRO_MAX_POOL_RESPAWNS / REPRO_MAX_TASK_RETRIES /
    # REPRO_TASK_DEADLINE_MS), an explicit value (e.g. from the CLI flags)
    # wins over them.
    extra = {}
    if warm_tier is not None:
        extra["warm_tier"] = warm_tier
    if speculate is not None:
        extra["speculate"] = speculate
    if fault_plan is not None:
        extra["fault_plan"] = fault_plan
    if max_pool_respawns is not None:
        extra["max_pool_respawns"] = max_pool_respawns
    if max_task_retries is not None:
        extra["max_task_retries"] = max_task_retries
    if task_deadline_ms is not None:
        extra["task_deadline_ms"] = task_deadline_ms
    return AnalysisEngine(
        config=config,
        options=EngineOptions(
            parallel=parallel,
            cache_dir=cache_dir,
            use_semantic_predicates=use_semantic_predicates,
            granularity=granularity,
            cache_max_entries=cache_max_entries,
            dispatch=dispatch,
            events_path=events,
            chunk_target_ms=chunk_target_ms,
            **extra,
        ),
    )


def _wrap_runs(
    engine: AnalysisEngine,
    engine_runs,
    use_semantic_predicates: bool,
    measure_plain_time: bool,
) -> List[WorkloadRun]:
    runs: List[WorkloadRun] = []
    for engine_run in engine_runs:
        plain = (
            plain_interpretation_time(engine_run.workload) if measure_plain_time else 0.0
        )
        runs.append(
            WorkloadRun(
                workload=engine_run.workload,
                result=engine_run.result,
                config=engine.config,
                plain_interpretation_seconds=plain,
                used_semantic_predicates=use_semantic_predicates,
            )
        )
    return runs


def analyze_workload(
    workload: Workload,
    config: Optional[PortendConfig] = None,
    use_semantic_predicates: bool = False,
    measure_plain_time: bool = False,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
    granularity: str = "auto",
    cache_max_entries: Optional[int] = None,
    dispatch: str = "streaming",
    solver: Optional[str] = None,
    events: Optional[str] = None,
    chunk_target_ms: int = 500,
    warm_tier: Optional[bool] = None,
    speculate: Optional[bool] = None,
    interp: Optional[str] = None,
    fault_plan: Optional[str] = None,
    max_pool_respawns: Optional[int] = None,
    max_task_retries: Optional[int] = None,
    task_deadline_ms: Optional[int] = None,
) -> WorkloadRun:
    """Run detection + classification for one workload."""
    engine = _engine(
        config, use_semantic_predicates, parallel, cache_dir, granularity,
        cache_max_entries, dispatch, solver, events, chunk_target_ms,
        warm_tier, speculate, interp,
        fault_plan, max_pool_respawns, max_task_retries, task_deadline_ms,
    )
    engine_runs = engine.analyze_workloads([workload])
    return _wrap_runs(engine, engine_runs, use_semantic_predicates, measure_plain_time)[0]


def analyze_all(
    names: Optional[Sequence[str]] = None,
    config: Optional[PortendConfig] = None,
    include_micro: bool = True,
    use_semantic_predicates: bool = False,
    measure_plain_time: bool = False,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
    granularity: str = "auto",
    cache_max_entries: Optional[int] = None,
    dispatch: str = "streaming",
    solver: Optional[str] = None,
    events: Optional[str] = None,
    chunk_target_ms: int = 500,
    warm_tier: Optional[bool] = None,
    speculate: Optional[bool] = None,
    interp: Optional[str] = None,
    fault_plan: Optional[str] = None,
    max_pool_respawns: Optional[int] = None,
    max_task_retries: Optional[int] = None,
    task_deadline_ms: Optional[int] = None,
) -> List[WorkloadRun]:
    """Run Portend over a set of workloads (default: the full Table 1 list).

    ``parallel`` dispatches the pipeline queues over a process pool;
    ``cache_dir`` reuses recorded traces *and* classifications across
    invocations; ``granularity`` picks the stage-3 task grain ("race",
    "path", or "auto"); ``dispatch`` picks the pool strategy ("streaming"
    full-stream run-wide scheduler, "staged" persistent pool with a
    record-stage barrier, or the legacy "barrier" -- see
    :class:`repro.engine.EngineOptions`); ``solver`` overrides the
    config's solver backend (see :mod:`repro.symex.factory`); ``events``
    appends the run's structured event stream to a JSON-lines file;
    ``chunk_target_ms`` sets the cost-aware scheduler's per-chunk
    wall-clock target; ``warm_tier``/``speculate`` toggle the persistent
    solver warm tier and speculative path submission (None defers to the
    ``REPRO_WARM_TIER``/``REPRO_SPECULATE`` environment defaults);
    ``interp`` overrides the config's interpreter kernel (see
    :mod:`repro.runtime.compile`; kernels are bit-identical by contract);
    ``fault_plan`` installs a deterministic fault-injection plan in the pool
    workers and ``max_pool_respawns`` / ``max_task_retries`` /
    ``task_deadline_ms`` tune the supervision ladder that recovers from
    worker crashes, hangs and malformed results (see
    :mod:`repro.engine.faults` and :mod:`repro.engine.dispatch`; None
    defers to the ``REPRO_*`` environment defaults).
    """
    if names is None:
        workloads = all_workloads(include_micro=include_micro)
    else:
        workloads = [load_workload(name) for name in names]
    engine = _engine(
        config, use_semantic_predicates, parallel, cache_dir, granularity,
        cache_max_entries, dispatch, solver, events, chunk_target_ms,
        warm_tier, speculate, interp,
        fault_plan, max_pool_respawns, max_task_retries, task_deadline_ms,
    )
    engine_runs = engine.analyze_workloads(workloads)
    return _wrap_runs(engine, engine_runs, use_semantic_predicates, measure_plain_time)
