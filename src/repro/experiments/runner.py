"""Shared experiment driver: run Portend over workloads and keep the results."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import PortendConfig
from repro.core.portend import Portend, PortendResult
from repro.record_replay.recorder import record_execution
from repro.runtime.executor import Executor
from repro.workloads import Workload, all_workloads, load_workload


@dataclass
class WorkloadRun:
    """Portend's results for one workload under one configuration."""

    workload: Workload
    result: PortendResult
    config: PortendConfig
    plain_interpretation_seconds: float = 0.0
    used_semantic_predicates: bool = False

    @property
    def name(self) -> str:
        return self.workload.name


def plain_interpretation_time(workload: Workload) -> float:
    """Time to interpret the program concretely, without detection/classification.

    This reproduces Table 4's "Cloud9 running time" column: the baseline cost
    of running the program in the interpreter with both race detection and
    classification disabled.
    """
    executor = Executor(workload.program)
    state = executor.initial_state(concrete_inputs=workload.inputs)
    started = time.perf_counter()
    executor.run(state)
    return time.perf_counter() - started


def analyze_workload(
    workload: Workload,
    config: Optional[PortendConfig] = None,
    use_semantic_predicates: bool = False,
    measure_plain_time: bool = False,
) -> WorkloadRun:
    """Run detection + classification for one workload."""
    config = config or PortendConfig()
    predicates = list(workload.predicates)
    if use_semantic_predicates:
        predicates += list(workload.semantic_predicates)
    portend = Portend(workload.program, config=config, predicates=predicates)
    result = portend.analyze(workload.inputs)
    plain = plain_interpretation_time(workload) if measure_plain_time else 0.0
    return WorkloadRun(
        workload=workload,
        result=result,
        config=config,
        plain_interpretation_seconds=plain,
        used_semantic_predicates=use_semantic_predicates,
    )


def analyze_all(
    names: Optional[Sequence[str]] = None,
    config: Optional[PortendConfig] = None,
    include_micro: bool = True,
    use_semantic_predicates: bool = False,
    measure_plain_time: bool = False,
) -> List[WorkloadRun]:
    """Run Portend over a set of workloads (default: the full Table 1 list)."""
    if names is None:
        workloads = all_workloads(include_micro=include_micro)
    else:
        workloads = [load_workload(name) for name in names]
    return [
        analyze_workload(
            workload,
            config=config,
            use_semantic_predicates=use_semantic_predicates,
            measure_plain_time=measure_plain_time,
        )
        for workload in workloads
    ]
