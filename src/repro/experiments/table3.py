"""Table 3: classification of every detected race, per program.

Also reproduces the auxiliary "states same / states differ" split of the
k-witness column by recording whether the post-race memory snapshots of the
primary and alternate executions differed (the Record/Replay-Analyzer
criterion, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.categories import RaceClass
from repro.core.config import PortendConfig
from repro.experiments.runner import WorkloadRun, analyze_all


@dataclass
class Table3Row:
    program: str
    distinct_races: int
    race_instances: int
    spec_violated: int
    output_differs: int
    k_witness_states_same: int
    k_witness_states_differ: int
    single_ordering: int

    @property
    def k_witness(self) -> int:
        return self.k_witness_states_same + self.k_witness_states_differ


def run(
    config: Optional[PortendConfig] = None,
    runs: Optional[Sequence[WorkloadRun]] = None,
) -> List[Table3Row]:
    runs = list(runs) if runs is not None else analyze_all(config=config)
    rows: List[Table3Row] = []
    for run_ in runs:
        counts = run_.result.counts()
        k_same = k_differ = 0
        for item in run_.result.classified:
            if item.classification is not RaceClass.K_WITNESS_HARMLESS:
                continue
            if item.evidence.post_race_states_differ:
                k_differ += 1
            else:
                k_same += 1
        rows.append(
            Table3Row(
                program=run_.name,
                distinct_races=run_.result.distinct_races(),
                race_instances=run_.result.race_instances(),
                spec_violated=counts.get(RaceClass.SPEC_VIOLATED, 0),
                output_differs=counts.get(RaceClass.OUTPUT_DIFFERS, 0),
                k_witness_states_same=k_same,
                k_witness_states_differ=k_differ,
                single_ordering=counts.get(RaceClass.SINGLE_ORDERING, 0),
            )
        )
    return rows


def render(rows: Sequence[Table3Row]) -> str:
    header = (
        f"{'Program':<12} {'Distinct':>8} {'Instances':>9} {'SpecViol':>9} "
        f"{'OutDiff':>8} {'K-wit(same)':>11} {'K-wit(diff)':>11} {'SingleOrd':>10}"
    )
    lines = ["Table 3: summary of Portend's classification results", header, "-" * len(header)]
    totals = [0] * 7
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.distinct_races:>8} {row.race_instances:>9} "
            f"{row.spec_violated:>9} {row.output_differs:>8} {row.k_witness_states_same:>11} "
            f"{row.k_witness_states_differ:>11} {row.single_ordering:>10}"
        )
        for index, value in enumerate(
            (row.distinct_races, row.race_instances, row.spec_violated, row.output_differs,
             row.k_witness_states_same, row.k_witness_states_differ, row.single_ordering)
        ):
            totals[index] += value
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':<12} {totals[0]:>8} {totals[1]:>9} {totals[2]:>9} {totals[3]:>8} "
        f"{totals[4]:>11} {totals[5]:>11} {totals[6]:>10}"
    )
    return "\n".join(lines)
