"""Command-line entry point: ``python -m repro.experiments <experiment>``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig7, fig9, fig10, table1, table2, table3, table4, table5

_EXPERIMENTS = {
    "table1": (table1, {}),
    "table2": (table2, {}),
    "table3": (table3, {}),
    "table4": (table4, {}),
    "table5": (table5, {}),
    "fig7": (fig7, {}),
    "fig9": (fig9, {}),
    "fig10": (fig10, {}),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the Portend paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    args = parser.parse_args(argv)

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        module, kwargs = _EXPERIMENTS[name]
        result = module.run(**kwargs)
        print(module.render(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
