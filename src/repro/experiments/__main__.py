"""Command-line entry point: ``python -m repro.experiments <experiment>``.

The shared-run experiments (table3/table4/table5/fig9) all consume one
default-configuration analysis of the workload list; the driver computes
those runs once through the :class:`repro.engine.AnalysisEngine` -- honoring
``--parallel``, ``--cache-dir`` and ``--workloads`` -- and hands them to
every requested experiment.  The ablation experiments (table2, fig7, fig10)
sweep their own configurations but still honor ``--parallel`` and
``--cache-dir`` for each per-config analysis.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig7, fig9, fig10, table1, table2, table3, table4, table5

_EXPERIMENTS = {
    "table1": (table1, {}),
    "table2": (table2, {}),
    "table3": (table3, {}),
    "table4": (table4, {}),
    "table5": (table5, {}),
    "fig7": (fig7, {}),
    "fig9": (fig9, {}),
    "fig10": (fig10, {}),
}

#: experiments whose run() accepts precomputed default-config runs
_RUNS_CAPABLE = {"table3", "table4", "table5", "fig9"}

#: ablation experiments that analyze with their own configs but still accept
#: the engine's parallel/cache flags per analysis
_ENGINE_FLAG_CAPABLE = {"table2", "fig7", "fig10"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the Portend paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "cache-info", "events-info", "profile"],
        help="which table/figure to regenerate, 'cache-info' to dump "
        "per-entry age and hit counts of a --cache-dir (including the "
        "costmodel.json and solver_warm/ sidecar tiers), 'events-info' to "
        "summarize a structured event log written via --events, or "
        "'profile' to run one workload's analysis under cProfile",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        metavar="WORKLOAD",
        help="workload name for the 'profile' experiment (e.g. 'bbuf')",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="classify races over N worker processes (0/1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache recorded execution traces in DIR and reuse them",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        metavar="NAMES",
        help="comma-separated workload subset for the shared-run experiments "
        "(table3/table4/table5/fig9); default: the full Table 1 list",
    )
    parser.add_argument(
        "--task-granularity",
        default="auto",
        choices=["auto", "race", "path"],
        dest="granularity",
        help="classification task grain: 'race' = one task per (workload, race), "
        "'path' = one task per (race, primary-path); 'auto' adapts per workload "
        "when --parallel > 1 (path for few-race workloads, race for many-race "
        "ones) and stays at 'race' serially",
    )
    parser.add_argument(
        "--dispatch",
        default="streaming",
        choices=["streaming", "staged", "barrier"],
        help="pool dispatch strategy under --parallel: 'streaming' runs the "
        "whole record→classify→plan→path pipeline as one run-wide scheduler "
        "on a persistent worker pool; 'staged' keeps the persistent pool but "
        "barriers after the record stage (the previous default, kept for A/B "
        "comparison); 'barrier' is the legacy fresh-pool-per-stage behaviour",
    )
    parser.add_argument(
        "--chunk-target-ms",
        type=int,
        default=500,
        metavar="MS",
        help="per-chunk wall-clock target for the cost-aware scheduler: wide "
        "task queues are packed into chunks estimated to run roughly this "
        "long (default 500; see the costmodel.json sidecar in --cache-dir)",
    )
    parser.add_argument(
        "--warm-tier",
        action=argparse.BooleanOptionalAction,
        default=None,
        dest="warm_tier",
        help="persist the hottest worker-lifetime solver-cache entries to "
        "solver_warm/ sidecars in --cache-dir and rehydrate them into fresh "
        "worker processes, so cold processes start warm (advisory: verdicts "
        "are bit-identical either way).  Default: the REPRO_WARM_TIER "
        "environment variable, else on; requires --cache-dir to take effect",
    )
    parser.add_argument(
        "--speculate",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="pre-submit path tasks for the primary count the cost model's "
        "history predicts, before each race's plan lands (full-stream "
        "scheduler only; changes scheduling, never verdicts).  Default: the "
        "REPRO_SPECULATE environment variable, else off",
    )
    parser.add_argument(
        "--solver",
        default=None,
        metavar="BACKEND",
        help="solver backend for every analysis: 'default' (bounded "
        "enumeration) or 'portfolio' (interval-propagation fast path with "
        "enumeration fallback); backends are verdict-bit-identical.  "
        "Defaults to the REPRO_SOLVER environment variable, else 'default'",
    )
    parser.add_argument(
        "--interp",
        default=None,
        metavar="KERNEL",
        help="interpreter kernel for every analysis: 'tree' (the walking "
        "interpreter) or 'compiled' (per-statement handler closures compiled "
        "once per program); kernels are verdict-bit-identical.  Defaults to "
        "the REPRO_INTERP environment variable, else 'tree'",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan for the pool workers: inline "
        "JSON (starting with '{') or a path to a JSON file describing crash/"
        "hang/malformed-result/corrupt-sidecar faults (see "
        "repro.engine.faults).  Shared-run experiments only.  Defaults to "
        "the REPRO_FAULT_PLAN environment variable, else none",
    )
    parser.add_argument(
        "--max-pool-respawns",
        type=int,
        default=None,
        metavar="N",
        help="rebuild a crashed/hung persistent pool up to N times per run "
        "before downgrading the rest of the run to serial execution.  "
        "Defaults to REPRO_MAX_POOL_RESPAWNS, else 2",
    )
    parser.add_argument(
        "--max-task-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-execute a task that crashed its worker, missed its deadline "
        "or returned a malformed result up to N extra times before "
        "quarantining it (alone) to the in-driver serial path.  Defaults to "
        "REPRO_MAX_TASK_RETRIES, else 2",
    )
    parser.add_argument(
        "--task-deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="flat per-chunk deadline for pooled tasks; an expired chunk is "
        "cancelled, the pool respawned and the chunk retried.  0 derives "
        "deadlines from the cost model's latency estimates (with a floor "
        "from REPRO_DEADLINE_FLOOR_MS).  Defaults to "
        "REPRO_TASK_DEADLINE_MS, else 0",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="how many functions the 'profile' experiment prints (by "
        "cumulative time; default 25)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="append every engine run's structured event stream to PATH as "
        "JSON lines (the file is truncated at invocation start); summarize "
        "it afterwards with the 'events-info' experiment",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound each cache layer in --cache-dir to N entries "
        "(least-recently-used entries are evicted beyond it)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache/recompute counters after the experiments "
        "(always printed when --cache-dir is given)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "cache-info":
        if not args.cache_dir:
            parser.error("cache-info requires --cache-dir")
        from repro.engine.cache import collect_cache_info, render_cache_info

        print(render_cache_info(collect_cache_info(args.cache_dir)))
        return 0

    if args.experiment == "events-info":
        if not args.events:
            parser.error("events-info requires --events")
        from repro.engine.events import load_events, render_events_info

        print(render_events_info(load_events(args.events)))
        return 0

    if args.solver is not None:
        from repro.symex.factory import solver_backends

        if args.solver not in solver_backends():
            parser.error(
                f"unknown solver backend {args.solver!r}; "
                f"choose from {', '.join(solver_backends())}"
            )

    if args.interp is not None:
        from repro.runtime.compile import INTERP_MODES

        if args.interp not in INTERP_MODES:
            parser.error(
                f"unknown interpreter {args.interp!r}; "
                f"choose from {', '.join(INTERP_MODES)}"
            )

    if args.experiment == "profile":
        if not args.target:
            parser.error("profile requires a workload name (e.g. 'profile bbuf')")
        from repro.experiments.profile import render_profile, run_profile

        report = run_profile(
            args.target, top=args.profile_top, interp=args.interp
        )
        print(render_profile(report))
        return 0

    if args.events:
        # Engine runs append; start each invocation from an empty log.
        open(args.events, "w", encoding="utf-8").close()

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    from repro.engine.stats import GLOBAL_STATS

    GLOBAL_STATS.reset()

    shared_runs = None
    if any(name in _RUNS_CAPABLE for name in names):
        from repro.experiments.runner import analyze_all

        workload_names = (
            [item.strip() for item in args.workloads.split(",") if item.strip()]
            if args.workloads
            else None
        )
        shared_runs = analyze_all(
            names=workload_names,
            measure_plain_time="table4" in names,
            parallel=args.parallel,
            cache_dir=args.cache_dir,
            granularity=args.granularity,
            cache_max_entries=args.cache_max_entries,
            dispatch=args.dispatch,
            solver=args.solver,
            events=args.events,
            chunk_target_ms=args.chunk_target_ms,
            warm_tier=args.warm_tier,
            speculate=args.speculate,
            interp=args.interp,
            fault_plan=args.fault_plan,
            max_pool_respawns=args.max_pool_respawns,
            max_task_retries=args.max_task_retries,
            task_deadline_ms=args.task_deadline_ms,
        )

    for name in names:
        module, kwargs = _EXPERIMENTS[name]
        if name in _RUNS_CAPABLE and shared_runs is not None:
            result = module.run(runs=shared_runs, **kwargs)
        elif name in _ENGINE_FLAG_CAPABLE:
            result = module.run(
                parallel=args.parallel,
                cache_dir=args.cache_dir,
                granularity=args.granularity,
                dispatch=args.dispatch,
                solver=args.solver,
                events=args.events,
                chunk_target_ms=args.chunk_target_ms,
                warm_tier=args.warm_tier,
                speculate=args.speculate,
                interp=args.interp,
                **kwargs,
            )
        else:
            result = module.run(**kwargs)
        print(module.render(result))
        print()

    if args.stats or args.cache_dir:
        # One line the warm-cache CI job can assert on: a second identically
        # configured run must report "classifications computed=0".
        print(GLOBAL_STATS.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
