"""Fig. 7: contribution of each technique to Portend's accuracy.

Accuracy of ctrace, pbzip2, memcached and bbuf under four configurations:
single-path analysis only, plus ad-hoc synchronisation detection, plus
multi-path analysis, plus multi-schedule analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import PortendConfig
from repro.experiments.metrics import score_workload
from repro.experiments.runner import analyze_workload
from repro.workloads import load_workload

PROGRAMS = ("ctrace", "pbzip2", "memcached", "bbuf")
TECHNIQUES = ("single-path", "+adhoc-detection", "+multi-path", "+multi-schedule")


@dataclass
class Fig7Result:
    #: accuracy[program][technique] in [0, 1]
    accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _configs(base: PortendConfig) -> Dict[str, PortendConfig]:
    return {
        "single-path": base.single_path_only(),
        "+adhoc-detection": base.with_adhoc_detection(),
        "+multi-path": base.with_multi_path(),
        "+multi-schedule": base.full(),
    }


def run(
    base_config: Optional[PortendConfig] = None,
    programs: Sequence[str] = PROGRAMS,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
    granularity: str = "auto",
    dispatch: str = "streaming",
    solver: Optional[str] = None,
    events: Optional[str] = None,
    chunk_target_ms: int = 500,
    warm_tier: Optional[bool] = None,
    speculate: Optional[bool] = None,
    interp: Optional[str] = None,
) -> Fig7Result:
    base = base_config or PortendConfig()
    result = Fig7Result()
    for name in programs:
        result.accuracy[name] = {}
        for technique, config in _configs(base).items():
            workload = load_workload(name)
            run_ = analyze_workload(
                workload,
                config=config,
                parallel=parallel,
                cache_dir=cache_dir,
                granularity=granularity,
                dispatch=dispatch,
                solver=solver,
                events=events,
                chunk_target_ms=chunk_target_ms,
                warm_tier=warm_tier,
                speculate=speculate,
                interp=interp,
            )
            score = score_workload(workload, run_.result.classified)
            result.accuracy[name][technique] = score.accuracy
    return result


def render(result: Fig7Result) -> str:
    header = f"{'Program':<12} " + " ".join(f"{t:>17}" for t in TECHNIQUES)
    lines = ["Fig. 7: accuracy breakdown per technique", header, "-" * len(header)]
    for program, per_technique in result.accuracy.items():
        lines.append(
            f"{program:<12} "
            + " ".join(f"{100 * per_technique.get(t, 0.0):>16.0f}%" for t in TECHNIQUES)
        )
    return "\n".join(lines)
