"""Fig. 10: classification accuracy as a function of k = Mp x Ma."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import PortendConfig
from repro.experiments.metrics import score_workload
from repro.experiments.runner import analyze_workload
from repro.workloads import load_workload

PROGRAMS = ("pbzip2", "ctrace", "memcached", "bbuf")
DEFAULT_K_VALUES = (1, 3, 5, 7, 9, 11)


@dataclass
class Fig10Result:
    #: accuracy[program][k] in [0, 1]
    accuracy: Dict[str, Dict[int, float]] = field(default_factory=dict)


def run(
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    programs: Sequence[str] = PROGRAMS,
    base_config: Optional[PortendConfig] = None,
    parallel: int = 0,
    cache_dir: Optional[str] = None,
    granularity: str = "auto",
    dispatch: str = "streaming",
    solver: Optional[str] = None,
    events: Optional[str] = None,
    chunk_target_ms: int = 500,
    warm_tier: Optional[bool] = None,
    speculate: Optional[bool] = None,
    interp: Optional[str] = None,
) -> Fig10Result:
    base = base_config or PortendConfig()
    result = Fig10Result()
    for name in programs:
        result.accuracy[name] = {}
        for k in k_values:
            workload = load_workload(name)
            config = base.with_k(k)
            run_ = analyze_workload(
                workload,
                config=config,
                parallel=parallel,
                cache_dir=cache_dir,
                granularity=granularity,
                dispatch=dispatch,
                solver=solver,
                events=events,
                chunk_target_ms=chunk_target_ms,
                warm_tier=warm_tier,
                speculate=speculate,
                interp=interp,
            )
            score = score_workload(workload, run_.result.classified)
            result.accuracy[name][k] = score.accuracy
    return result


def render(result: Fig10Result) -> str:
    k_values = sorted({k for series in result.accuracy.values() for k in series})
    header = f"{'Program':<12} " + " ".join(f"k={k:<4}" for k in k_values)
    lines = ["Fig. 10: accuracy with increasing values of k", header, "-" * len(header)]
    for program, series in result.accuracy.items():
        lines.append(
            f"{program:<12} "
            + " ".join(f"{100 * series.get(k, 0.0):>4.0f}%" for k in k_values)
        )
    return "\n".join(lines)
