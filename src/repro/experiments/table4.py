"""Table 4: classification time per program (avg/min/max) vs plain interpretation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import PortendConfig
from repro.experiments.runner import WorkloadRun, analyze_all


@dataclass
class Table4Row:
    program: str
    plain_interpretation_seconds: float
    avg_classification_seconds: float
    min_classification_seconds: float
    max_classification_seconds: float

    @property
    def overhead(self) -> float:
        if self.plain_interpretation_seconds <= 0:
            return 0.0
        return self.avg_classification_seconds / self.plain_interpretation_seconds


def run(
    config: Optional[PortendConfig] = None,
    runs: Optional[Sequence[WorkloadRun]] = None,
) -> List[Table4Row]:
    runs = (
        list(runs)
        if runs is not None
        else analyze_all(config=config, measure_plain_time=True)
    )
    rows: List[Table4Row] = []
    for run_ in runs:
        times = [item.analysis_seconds for item in run_.result.classified] or [0.0]
        rows.append(
            Table4Row(
                program=run_.name,
                plain_interpretation_seconds=run_.plain_interpretation_seconds,
                avg_classification_seconds=sum(times) / len(times),
                min_classification_seconds=min(times),
                max_classification_seconds=max(times),
            )
        )
    return rows


def render(rows: Sequence[Table4Row]) -> str:
    header = (
        f"{'Program':<12} {'Interp (s)':>11} {'Avg (s)':>9} {'Min (s)':>9} {'Max (s)':>9}"
    )
    lines = ["Table 4: classification time per race", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.plain_interpretation_seconds:>11.4f} "
            f"{row.avg_classification_seconds:>9.4f} {row.min_classification_seconds:>9.4f} "
            f"{row.max_classification_seconds:>9.4f}"
        )
    return "\n".join(lines)
