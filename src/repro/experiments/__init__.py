"""Reproduction of every table and figure of the paper's evaluation (§5).

Each experiment module exposes a ``run(...)`` function returning a populated
result object plus a ``render(...)`` helper producing the text table/series
the paper reports.  ``python -m repro.experiments <name>`` runs one of them
from the command line; the ``benchmarks/`` directory wires each into
pytest-benchmark.
"""

from repro.experiments.metrics import AccuracyScore, score_workload
from repro.experiments.runner import WorkloadRun, analyze_workload, analyze_all

__all__ = [
    "AccuracyScore",
    "score_workload",
    "WorkloadRun",
    "analyze_workload",
    "analyze_all",
]
