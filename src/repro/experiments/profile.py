"""``python -m repro.experiments profile <workload>``: one workload under
cProfile.

Runs the complete serial analysis of one registry workload (record + detect
+ classify, the same work a ``table3`` row does) inside ``cProfile`` and
reports the top-N functions by cumulative time.  This is the repo's standing
answer to "where do the cycles go?" -- the interpreter hot-path work (the
compiled dispatch kernel and copy-on-write state forking) was scoped from
exactly this view.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Optional


@dataclass
class ProfileReport:
    """The outcome of one profiled analysis run."""

    workload: str
    interp: str
    seconds: float
    races: int
    statements: int
    forks: int
    cow_copies: int
    table: str


def run_profile(
    workload_name: str, top: int = 25, interp: Optional[str] = None
) -> ProfileReport:
    """Profile one workload's full serial analysis.

    ``interp`` picks the interpreter kernel (default: the config default,
    i.e. ``REPRO_INTERP`` or ``tree``), so ``profile bbuf --interp compiled``
    vs. ``profile bbuf`` shows where the compiled kernel moves time.
    """
    from dataclasses import replace

    from repro.core.config import PortendConfig
    from repro.core.portend import Portend
    from repro.workloads import load_workload

    workload = load_workload(workload_name)
    config = PortendConfig()
    if interp is not None:
        config = replace(config, interp=interp)
    portend = Portend(
        workload.program, config=config, predicates=workload.predicates
    )

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    trace = portend.record(inputs=dict(workload.inputs))
    result = portend.classify_trace(trace)
    profiler.disable()
    seconds = time.perf_counter() - started

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)

    counters = portend.executor.counters
    return ProfileReport(
        workload=workload_name,
        interp=portend.executor.interp,
        seconds=seconds,
        races=len(result.classified),
        statements=counters.statements,
        forks=counters.forks,
        cow_copies=counters.cow_copies,
        table=buffer.getvalue().rstrip(),
    )


def render_profile(report: ProfileReport) -> str:
    lines = [
        f"profile: {report.workload} "
        f"(interp={report.interp}, {report.seconds:.3f}s wall)",
        f"  races classified: {report.races}",
        f"  interpreter: statements={report.statements} "
        f"forks={report.forks} cow_copies={report.cow_copies}",
        "",
        report.table,
    ]
    return "\n".join(lines)
