"""Table 5: per-category accuracy of Portend vs the baseline classifiers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.adhoc_detector import AdHocSyncDetector, AdHocVerdict
from repro.baselines.replay_analyzer import RecordReplayAnalyzer
from repro.core.categories import RaceClass
from repro.core.config import PortendConfig
from repro.experiments.metrics import per_class_accuracy
from repro.experiments.runner import WorkloadRun, analyze_all

_CATEGORIES = (
    RaceClass.SPEC_VIOLATED,
    RaceClass.OUTPUT_DIFFERS,
    RaceClass.K_WITNESS_HARMLESS,
    RaceClass.SINGLE_ORDERING,
)


@dataclass
class Table5Result:
    """Per-approach, per-category (correct, total) counters."""

    portend: Dict[RaceClass, Tuple[int, int]] = field(default_factory=dict)
    replay_analyzer: Dict[RaceClass, Tuple[int, int]] = field(default_factory=dict)
    adhoc_detector: Dict[RaceClass, Tuple[int, int]] = field(default_factory=dict)

    @staticmethod
    def accuracy(cell: Tuple[int, int]) -> Optional[float]:
        correct, total = cell
        return None if total == 0 else correct / total


def run(
    config: Optional[PortendConfig] = None,
    runs: Optional[Sequence[WorkloadRun]] = None,
) -> Table5Result:
    runs = list(runs) if runs is not None else analyze_all(config=config)
    result = Table5Result()

    # Portend: per ground-truth category accuracy.
    result.portend = per_class_accuracy(
        [(run_.workload, run_.result.classified) for run_ in runs]
    )

    # Record/Replay-Analyzer: harmful/harmless verdicts scored per category
    # (a race is scored correct iff the binary verdict matches the ground
    # truth's harmfulness).
    replay_counters = {cls: (0, 0) for cls in _CATEGORIES}
    adhoc_counters = {cls: (0, 0) for cls in _CATEGORIES}
    for run_ in runs:
        workload = run_.workload
        analyzer = RecordReplayAnalyzer(workload.program)
        adhoc = AdHocSyncDetector(workload.program)
        for race in run_.result.trace.races:
            truth = workload.truth_for(race)
            if truth is None or truth.classification not in replay_counters:
                continue

            verdict = analyzer.classify(run_.result.trace, race)
            correct, total = replay_counters[truth.classification]
            is_correct = verdict.harmful == (truth.classification is RaceClass.SPEC_VIOLATED)
            replay_counters[truth.classification] = (correct + int(is_correct), total + 1)

            finding = adhoc.classify(race)
            correct, total = adhoc_counters[truth.classification]
            adhoc_correct = (
                finding.verdict is AdHocVerdict.SINGLE_ORDERING
                and truth.classification is RaceClass.SINGLE_ORDERING
            )
            adhoc_counters[truth.classification] = (correct + int(adhoc_correct), total + 1)

    result.replay_analyzer = replay_counters
    result.adhoc_detector = adhoc_counters
    return result


def render(result: Table5Result) -> str:
    def fmt(cell: Tuple[int, int]) -> str:
        accuracy = Table5Result.accuracy(cell)
        if accuracy is None:
            return "   n/a"
        return f"{100 * accuracy:5.0f}%"

    header = f"{'Approach':<28} {'specViol':>9} {'outDiff':>9} {'k-witness':>10} {'singleOrd':>10}"
    lines = ["Table 5: accuracy per approach and per category", header, "-" * len(header)]
    for label, counters in (
        ("Record/Replay-Analyzer", result.replay_analyzer),
        ("Ad-Hoc-Detector/Helgrind+", result.adhoc_detector),
        ("Portend", result.portend),
    ):
        lines.append(
            f"{label:<28} "
            + " ".join(f"{fmt(counters[cls]):>9}" for cls in _CATEGORIES[:2])
            + " "
            + f"{fmt(counters[_CATEGORIES[2]]):>10} {fmt(counters[_CATEGORIES[3]]):>10}"
        )
    return "\n".join(lines)
