"""Fig. 9: classification time vs preemption points and dependent branches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import PortendConfig
from repro.experiments.runner import WorkloadRun, analyze_all


@dataclass
class Fig9Sample:
    race_id: str
    program: str
    preemption_points: int
    dependent_branches: int
    classification_seconds: float
    classification_steps: int


def run(
    config: Optional[PortendConfig] = None,
    runs: Optional[Sequence[WorkloadRun]] = None,
) -> List[Fig9Sample]:
    runs = list(runs) if runs is not None else analyze_all(config=config)
    samples: List[Fig9Sample] = []
    for run_ in runs:
        preemptions = run_.result.trace.preemption_points
        for index, item in enumerate(run_.result.classified, start=1):
            samples.append(
                Fig9Sample(
                    race_id=f"{run_.name.lower()}{index}",
                    program=run_.name,
                    preemption_points=preemptions,
                    dependent_branches=max(item.paths_explored - 1, 0)
                    + item.race.instance_count,
                    classification_seconds=item.analysis_seconds,
                    classification_steps=item.analysis_steps,
                )
            )
    samples.sort(key=lambda sample: (sample.preemption_points, sample.dependent_branches))
    return samples


def render(samples: Sequence[Fig9Sample], limit: int = 20) -> str:
    header = (
        f"{'Race':<16} {'Preemptions':>12} {'Dep. branches':>14} "
        f"{'Time (s)':>10} {'Steps':>10}"
    )
    lines = [
        "Fig. 9: classification time vs preemptions and dependent branches",
        header,
        "-" * len(header),
    ]
    step = max(1, len(samples) // limit)
    for sample in samples[::step]:
        lines.append(
            f"{sample.race_id:<16} {sample.preemption_points:>12} "
            f"{sample.dependent_branches:>14} {sample.classification_seconds:>10.4f} "
            f"{sample.classification_steps:>10}"
        )
    return "\n".join(lines)
