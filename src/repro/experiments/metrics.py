"""Accuracy and precision metrics (§5.2, §5.4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.categories import ClassifiedRace, RaceClass
from repro.workloads.base import GroundTruth, Workload


@dataclass
class AccuracyScore:
    """Classification accuracy of one tool on one workload."""

    workload: str
    total: int = 0
    correct: int = 0
    mismatches: List[Tuple[str, str, str]] = field(default_factory=list)
    unmatched_races: List[str] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return 1.0 if self.total == 0 else self.correct / self.total

    def merge(self, other: "AccuracyScore") -> "AccuracyScore":
        merged = AccuracyScore(workload=f"{self.workload}+{other.workload}")
        merged.total = self.total + other.total
        merged.correct = self.correct + other.correct
        merged.mismatches = self.mismatches + other.mismatches
        merged.unmatched_races = self.unmatched_races + other.unmatched_races
        return merged


def score_workload(
    workload: Workload, classified: Sequence[ClassifiedRace]
) -> AccuracyScore:
    """Score Portend's classifications against the workload's ground truth."""
    score = AccuracyScore(workload=workload.name)
    for item in classified:
        truth = workload.truth_for(item.race)
        variable = item.race.location.name
        if truth is None:
            score.unmatched_races.append(variable)
            continue
        score.total += 1
        if truth.classification is item.classification:
            score.correct += 1
        else:
            score.mismatches.append(
                (variable, truth.classification.value, item.classification.value)
            )
    return score


def score_binary_verdicts(
    workload: Workload,
    verdicts: Sequence[Tuple[str, bool]],
) -> AccuracyScore:
    """Score a harmful/harmless-only classifier (the replay-analyzer baseline).

    ``verdicts`` is a list of (variable, claims_harmful) pairs; the ground
    truth considers "spec violated" harmful and everything else harmless.
    """
    score = AccuracyScore(workload=workload.name)
    for variable, claims_harmful in verdicts:
        truth = workload.ground_truth.get(variable)
        if truth is None:
            score.unmatched_races.append(variable)
            continue
        score.total += 1
        actually_harmful = truth.classification is RaceClass.SPEC_VIOLATED
        if claims_harmful == actually_harmful:
            score.correct += 1
        else:
            score.mismatches.append(
                (
                    variable,
                    "harmful" if actually_harmful else "harmless",
                    "harmful" if claims_harmful else "harmless",
                )
            )
    return score


def per_class_accuracy(
    workloads_and_results: Sequence[Tuple[Workload, Sequence[ClassifiedRace]]],
) -> Dict[RaceClass, Tuple[int, int]]:
    """(correct, total) per ground-truth class across many workloads (Table 5)."""
    counters: Dict[RaceClass, Tuple[int, int]] = {
        cls: (0, 0)
        for cls in (
            RaceClass.SPEC_VIOLATED,
            RaceClass.OUTPUT_DIFFERS,
            RaceClass.K_WITNESS_HARMLESS,
            RaceClass.SINGLE_ORDERING,
        )
    }
    for workload, classified in workloads_and_results:
        for item in classified:
            truth = workload.truth_for(item.race)
            if truth is None or truth.classification not in counters:
                continue
            correct, total = counters[truth.classification]
            counters[truth.classification] = (
                correct + (1 if item.classification is truth.classification else 0),
                total + 1,
            )
    return counters
