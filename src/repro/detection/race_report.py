"""Race records, clustering and report data structures.

Portend "clusters the data races it detects, in order to filter out similar
races; the clustering criterion is whether the racing accesses are made to
the same shared memory location by the same threads, and the stack traces of
the accesses are the same" (§4).  Two races are *distinct* "if they involve
different accesses to shared variables" (Table 3 caption); the same distinct
race may be observed many times (race instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.listeners import MemoryAccess
from repro.runtime.memory import MemoryLocation
from repro.runtime.threadstate import StackEntry


@dataclass(frozen=True)
class AccessInfo:
    """One racing access, as recorded by the detector."""

    tid: int
    pc: int
    label: str
    is_write: bool
    location: MemoryLocation
    step: int
    stack: Tuple = ()
    locks_held: Tuple[str, ...] = ()

    @classmethod
    def from_access(cls, access: MemoryAccess, locks_held: Sequence[str] = ()) -> "AccessInfo":
        return cls(
            tid=access.tid,
            pc=access.pc,
            label=access.label,
            is_write=access.is_write,
            location=access.location,
            step=access.step,
            stack=access.stack,
            locks_held=tuple(locks_held),
        )

    @property
    def kind(self) -> str:
        return "WRITE" if self.is_write else "READ"

    def thread_identity(self) -> str:
        """Stable identity of the accessing thread for clustering purposes.

        §4 clusters races made "by the same threads"; raw dynamic tids are the
        wrong notion of thread identity in a model with symmetric worker
        pools (every pairwise race between N identical workers would become
        its own distinct race), so the thread is identified by its role: the
        entry function at the bottom of the recorded stack trace.  Accesses
        recorded without a stack fall back to the dynamic tid.
        """
        if self.stack:
            return self.stack[0].function
        return f"tid:{self.tid}"

    def cluster_signature(self) -> Tuple:
        """Hashable, orderable signature of this access for clustering."""
        return (
            self.pc,
            self.thread_identity(),
            tuple((entry.function, entry.label) for entry in self.stack),
        )

    def describe(self) -> str:
        return f"{self.kind} of {self.location.describe()} by T{self.tid} at {self.label or self.pc}"

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "tid": self.tid,
            "pc": self.pc,
            "label": self.label,
            "is_write": self.is_write,
            "location": {
                "space": self.location.space,
                "name": self.location.name,
                "index": self.location.index,
            },
            "step": self.step,
            "stack": [[entry.function, entry.label] for entry in self.stack],
            "locks_held": list(self.locks_held),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AccessInfo":
        location = data["location"]
        return cls(
            tid=data["tid"],
            pc=data["pc"],
            label=data["label"],
            is_write=data["is_write"],
            location=MemoryLocation(location["space"], location["name"], location["index"]),
            step=data["step"],
            stack=tuple(StackEntry(function, label) for function, label in data["stack"]),
            locks_held=tuple(data["locks_held"]),
        )


@dataclass(frozen=True)
class RaceInstance:
    """One dynamic occurrence of a race: two conflicting, concurrent accesses.

    ``first`` is the access that occurred earlier in the observed execution
    (the "primary" order); ``second`` is the later one.
    """

    first: AccessInfo
    second: AccessInfo

    @property
    def location(self) -> MemoryLocation:
        return self.second.location

    def variable_key(self) -> Tuple[str, str]:
        """Identity of the shared variable (array indices collapse)."""
        return (self.location.space, self.location.name)

    def distinct_key(self) -> Tuple:
        """Key identifying the *distinct race* this instance belongs to.

        §4: the clustering criterion is "whether the racing accesses are made
        to the same shared memory location by the same threads, and the stack
        traces of the accesses are the same".  The key therefore covers the
        location, the program counters, the thread identities and the full
        stack traces of both accesses (the two access signatures are sorted
        so the key does not depend on which access was observed first).
        """
        signatures = tuple(
            sorted((self.first.cluster_signature(), self.second.cluster_signature()))
        )
        return (self.location.space, self.location.name, signatures)

    def to_dict(self) -> Dict:
        return {"first": self.first.to_dict(), "second": self.second.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict) -> "RaceInstance":
        return cls(
            first=AccessInfo.from_dict(data["first"]),
            second=AccessInfo.from_dict(data["second"]),
        )


@dataclass
class RaceReport:
    """A distinct data race plus all of its observed instances."""

    race_id: int
    program: str
    first: AccessInfo
    second: AccessInfo
    instances: List[RaceInstance] = field(default_factory=list)

    @property
    def location(self) -> MemoryLocation:
        return self.second.location

    @property
    def tids(self) -> Tuple[int, int]:
        return (self.first.tid, self.second.tid)

    @property
    def pcs(self) -> Tuple[int, int]:
        return (self.first.pc, self.second.pc)

    @property
    def instance_count(self) -> int:
        return len(self.instances)

    def describe(self) -> str:
        lines = [
            f"Data Race during access to: {self.location.describe()}",
            f"current thread id: {self.second.tid}: {self.second.kind}",
            f"racing thread id: {self.first.tid}: {self.first.kind}",
            f"Current thread at:",
            f"  {self.second.label or self.second.pc}",
            f"Previous at:",
            f"  {self.first.label or self.first.pc}",
            f"observed instances: {self.instance_count}",
        ]
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "race_id": self.race_id,
            "program": self.program,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
            "instances": [instance.to_dict() for instance in self.instances],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RaceReport":
        return cls(
            race_id=data["race_id"],
            program=data["program"],
            first=AccessInfo.from_dict(data["first"]),
            second=AccessInfo.from_dict(data["second"]),
            instances=[RaceInstance.from_dict(item) for item in data["instances"]],
        )


def cluster_races(
    program_name: str, instances: Sequence[RaceInstance]
) -> List[RaceReport]:
    """Group race instances into distinct races.

    The first observed instance of each cluster provides the representative
    access pair (its ordering defines the "primary" order used during
    classification).
    """
    reports: Dict[Tuple, RaceReport] = {}
    next_id = 1
    for instance in instances:
        key = instance.distinct_key()
        report = reports.get(key)
        if report is None:
            report = RaceReport(
                race_id=next_id,
                program=program_name,
                first=instance.first,
                second=instance.second,
            )
            next_id += 1
            reports[key] = report
        report.instances.append(instance)
    return list(reports.values())
