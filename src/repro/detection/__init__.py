"""Dynamic data-race detection.

Portend detects races "using a dynamic happens-before algorithm" (§3.1).
This package provides:

* :mod:`repro.detection.vector_clock` -- vector clocks,
* :mod:`repro.detection.happens_before` -- the happens-before detector,
  implemented as an execution listener,
* :mod:`repro.detection.lockset` -- an Eraser-style lockset detector, used to
  emulate imprecise third-party detectors,
* :mod:`repro.detection.race_report` -- race records, clustering into
  distinct races (§4), and report rendering.
"""

from repro.detection.vector_clock import VectorClock
from repro.detection.happens_before import HappensBeforeDetector
from repro.detection.lockset import LockSetDetector
from repro.detection.race_report import AccessInfo, RaceInstance, RaceReport, cluster_races

__all__ = [
    "VectorClock",
    "HappensBeforeDetector",
    "LockSetDetector",
    "AccessInfo",
    "RaceInstance",
    "RaceReport",
    "cluster_races",
]
