"""Dynamic happens-before race detection.

The detector is an :class:`repro.runtime.listeners.ExecutionListener`: it
observes synchronisation events to maintain per-thread vector clocks and
per-synchronisation-object "last release" clocks, and observes shared-memory
accesses to find pairs of conflicting, concurrent accesses.

Setting ``ignore_mutexes=True`` removes mutex-induced happens-before edges.
This reproduces the paper's false-positive experiment (§5.2): "we
deliberately removed from Portend's race detector its awareness of mutex
synchronizations", which makes the detector report lock-protected accesses
as races; Portend then classifies those as "single ordering".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detection.race_report import AccessInfo, RaceInstance
from repro.detection.vector_clock import VectorClock
from repro.runtime.listeners import ExecutionListener, MemoryAccess, SyncEvent
from repro.runtime.memory import MemoryLocation


@dataclass
class _LocationHistory:
    """Recent accesses to one memory location, split by kind."""

    reads: List[Tuple[AccessInfo, VectorClock]] = field(default_factory=list)
    writes: List[Tuple[AccessInfo, VectorClock]] = field(default_factory=list)


class HappensBeforeDetector(ExecutionListener):
    """Vector-clock happens-before race detector."""

    def __init__(
        self,
        ignore_mutexes: bool = False,
        ignore_condvars: bool = False,
        history_limit: int = 128,
    ) -> None:
        self.ignore_mutexes = ignore_mutexes
        self.ignore_condvars = ignore_condvars
        self.history_limit = history_limit
        self.thread_clocks: Dict[int, VectorClock] = {}
        self.mutex_clocks: Dict[str, VectorClock] = {}
        self.cond_clocks: Dict[str, VectorClock] = {}
        self.thread_exit_clocks: Dict[int, VectorClock] = {}
        self.histories: Dict[MemoryLocation, _LocationHistory] = {}
        self.race_instances: List[RaceInstance] = []
        self.access_count = 0

    # ----------------------------------------------------------------- clocks

    def _clock(self, tid: int) -> VectorClock:
        clock = self.thread_clocks.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self.thread_clocks[tid] = clock
        return clock

    def on_sync(self, state, event: SyncEvent) -> None:
        tid = event.tid
        clock = self._clock(tid)
        kind = event.kind

        if kind == "lock" and not self.ignore_mutexes:
            release = self.mutex_clocks.get(event.target)
            if release is not None:
                clock.merge(release)
        elif kind == "unlock" and not self.ignore_mutexes:
            self.mutex_clocks[event.target] = clock.copy()
        elif kind in ("cond_signal", "cond_broadcast") and not self.ignore_condvars:
            self.cond_clocks[event.target] = clock.copy()
            for peer in event.peer or ():
                self._clock(peer).merge(clock)
        elif kind == "cond_wait" and not self.ignore_condvars:
            # The happens-before edge from signal to wake is applied at signal
            # time (peer merge above); nothing to do at wait time.
            pass
        elif kind == "barrier_release":
            merged = VectorClock()
            for peer in event.peer or ():
                merged.merge(self._clock(peer))
            merged.merge(clock)
            for peer in event.peer or ():
                self._clock(peer).merge(merged)
            clock.merge(merged)
        elif kind == "spawn":
            for peer in event.peer or ():
                child = self._clock(peer)
                child.merge(clock)
                child.increment(peer)
        elif kind == "join":
            for peer in event.peer or ():
                exited = self.thread_exit_clocks.get(peer) or self.thread_clocks.get(peer)
                if exited is not None:
                    clock.merge(exited)
        elif kind == "exit":
            self.thread_exit_clocks[tid] = clock.copy()

        clock.increment(tid)

    # --------------------------------------------------------------- accesses

    def on_access(self, state, access: MemoryAccess) -> None:
        self.access_count += 1
        tid = access.tid
        clock = self._clock(tid)
        locks_held = tuple(state.thread(tid).held_mutexes)
        info = AccessInfo.from_access(access, locks_held)
        history = self.histories.setdefault(access.location, _LocationHistory())

        # A write races with every concurrent previous read and write; a read
        # races only with concurrent previous writes.
        conflicting: List[Tuple[AccessInfo, VectorClock]] = list(history.writes)
        if access.is_write:
            conflicting += history.reads
        for previous, previous_clock in conflicting:
            if previous.tid == tid:
                continue
            if previous_clock.less_or_equal(clock):
                continue
            self.race_instances.append(RaceInstance(first=previous, second=info))

        bucket = history.writes if access.is_write else history.reads
        bucket.append((info, clock.copy()))
        if len(bucket) > self.history_limit:
            del bucket[0]

    # ----------------------------------------------------------------- output

    def races(self) -> List[RaceInstance]:
        return list(self.race_instances)
