"""Vector clocks for happens-before tracking (Lamport [31] in the paper)."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping


class VectorClock:
    """A mapping from thread id to logical clock value."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Mapping[int, int] = ()) -> None:
        self._clock: Dict[int, int] = dict(clock)

    # ------------------------------------------------------------- operations

    def increment(self, tid: int) -> None:
        """Advance ``tid``'s component by one."""
        self._clock[tid] = self._clock.get(tid, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum with ``other`` (the join of the two clocks)."""
        for tid, value in other._clock.items():
            if value > self._clock.get(tid, 0):
                self._clock[tid] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    # ------------------------------------------------------------ comparisons

    def get(self, tid: int) -> int:
        return self._clock.get(tid, 0)

    def happens_before(self, other: "VectorClock") -> bool:
        """True when self ≤ other pointwise and self ≠ other."""
        return self.less_or_equal(other) and self != other

    def less_or_equal(self, other: "VectorClock") -> bool:
        return all(value <= other._clock.get(tid, 0) for tid, value in self._clock.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.less_or_equal(other) and not other.less_or_equal(self)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        tids = set(self._clock) | set(other._clock)
        return all(self.get(tid) == other.get(tid) for tid in tids)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(sorted((t, v) for t, v in self._clock.items() if v)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"T{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"VC({inner})"
