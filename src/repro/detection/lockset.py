"""Eraser-style lockset race detection.

Lockset detectors report a potential race whenever a shared location is
accessed by more than one thread and the intersection of the locks held at
those accesses becomes empty.  They are complete but imprecise (the paper
cites false-positive rates up to 84% for static/lockset-style detectors); the
reproduction uses this detector to generate imperfect race reports that
Portend must triage, demonstrating the "false positive handling" behaviour of
§5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.detection.race_report import AccessInfo, RaceInstance
from repro.runtime.listeners import ExecutionListener, MemoryAccess
from repro.runtime.memory import MemoryLocation


@dataclass
class _LocksetState:
    """Per-location candidate lockset plus bookkeeping for reporting."""

    candidate: Optional[Set[str]] = None
    threads: Set[int] = field(default_factory=set)
    has_write: bool = False
    first_access: Optional[AccessInfo] = None
    reported: bool = False
    accesses: List[AccessInfo] = field(default_factory=list)


class LockSetDetector(ExecutionListener):
    """A simplified Eraser: report when the candidate lockset becomes empty."""

    def __init__(self, history_limit: int = 64) -> None:
        self.history_limit = history_limit
        self._locations: Dict[MemoryLocation, _LocksetState] = {}
        self.race_instances: List[RaceInstance] = []

    def on_access(self, state, access: MemoryAccess) -> None:
        tid = access.tid
        locks_held = set(state.thread(tid).held_mutexes)
        info = AccessInfo.from_access(access, tuple(sorted(locks_held)))
        location_state = self._locations.setdefault(access.location, _LocksetState())

        if location_state.candidate is None:
            location_state.candidate = set(locks_held)
        else:
            location_state.candidate &= locks_held
        location_state.threads.add(tid)
        location_state.has_write = location_state.has_write or access.is_write
        if location_state.first_access is None:
            location_state.first_access = info
        location_state.accesses.append(info)
        if len(location_state.accesses) > self.history_limit:
            del location_state.accesses[0]

        unprotected = not location_state.candidate
        shared = len(location_state.threads) > 1
        if unprotected and shared and location_state.has_write:
            partner = self._find_partner(location_state, info)
            if partner is not None:
                self.race_instances.append(RaceInstance(first=partner, second=info))

    @staticmethod
    def _find_partner(location_state: _LocksetState, current: AccessInfo) -> Optional[AccessInfo]:
        """Pick the most recent conflicting access from another thread."""
        for previous in reversed(location_state.accesses[:-1]):
            if previous.tid == current.tid:
                continue
            if previous.is_write or current.is_write:
                return previous
        return None

    def races(self) -> List[RaceInstance]:
        return list(self.race_instances)
